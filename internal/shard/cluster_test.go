package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"tensorbase/internal/engine"
	"tensorbase/internal/nn"
	"tensorbase/internal/obs"
	"tensorbase/internal/table"
)

// seedSQL returns the statements that build the test table on any engine
// or cluster: id INT (the shard key), amount DOUBLE, who TEXT, f VECTOR.
// Amounts are distinct multiples of 0.25, so partial SUM/AVG across shards
// re-associate without rounding — scatter results stay bit-identical to
// single-node (arbitrary doubles would not: float addition is not
// associative, which DESIGN.md calls out).
func seedSQL(rows int) []string {
	stmts := []string{"CREATE TABLE tx (id INT, amount DOUBLE, who TEXT, f VECTOR)"}
	people := []string{"alice", "bob", "carol"}
	var b strings.Builder
	b.WriteString("INSERT INTO tx VALUES ")
	for i := 0; i < rows; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		amount := float64(i) + 0.25
		fmt.Fprintf(&b, "(%d, %s, '%s', [%d, %d, %d, %d])",
			i, fmt.Sprintf("%g", amount), people[i%len(people)], i, 2*i%7, (i*i)%11, 3+i%5)
	}
	stmts = append(stmts, b.String())
	return stmts
}

// testModel is a tiny deterministic FC model over the 4-dim feature column.
func testModel() *nn.Model {
	rng := rand.New(rand.NewSource(7))
	m, err := nn.NewModel("m4", []int{1, 4}, nn.NewLinear(rng, 4, 1))
	if err != nil {
		panic(err)
	}
	return m
}

// newRefEngine builds the single-node reference: all rows in one engine.
func newRefEngine(t *testing.T, rows int) *engine.DB {
	t.Helper()
	db, err := engine.Open(filepath.Join(t.TempDir(), "ref"), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for _, s := range seedSQL(rows) {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.LoadModel(testModel(), 0.9); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateVectorIndex("tx", "f"); err != nil {
		t.Fatal(err)
	}
	return db
}

// newTestCluster builds an n-shard local cluster with the same data,
// loaded through the coordinator's own statement path.
func newTestCluster(t *testing.T, shards, rows int) *Cluster {
	t.Helper()
	cl, err := NewLocalCluster(t.TempDir(), shards, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	sess := cl.NewSession()
	for _, s := range seedSQL(rows) {
		if _, err := cl.Exec(context.Background(), s, sess); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.LoadModel(testModel(), 0.9); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CreateVectorIndex("tx", "f"); err != nil {
		t.Fatal(err)
	}
	return cl
}

// mustEqualResults asserts bit-identical schema and rows.
func mustEqualResults(t *testing.T, query string, want, got *engine.Result) {
	t.Helper()
	if len(want.Schema.Cols) != len(got.Schema.Cols) {
		t.Fatalf("%s: schema %v != %v", query, got.Schema.Cols, want.Schema.Cols)
	}
	for i := range want.Schema.Cols {
		if want.Schema.Cols[i] != got.Schema.Cols[i] {
			t.Fatalf("%s: schema col %d: %v != %v", query, i, got.Schema.Cols[i], want.Schema.Cols[i])
		}
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("%s: %d rows, want %d", query, len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if !want.Rows[i][j].Equal(got.Rows[i][j]) {
				t.Fatalf("%s: row %d col %d: %v != %v", query, i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
}

// matrixQueries is the scatter-vs-single-node identity matrix: plain and
// filtered scans, ordered scans with pushed limits, global and grouped
// aggregates, PREDICT push-down, CTEs, and pinned point reads — including
// the comment/CTE/parenthesized forms the read classifier must route.
var matrixQueries = []string{
	"SELECT id, amount, who FROM tx ORDER BY id",
	"SELECT id, amount FROM tx WHERE amount > 10 ORDER BY id DESC",
	"SELECT id, amount FROM tx ORDER BY amount LIMIT 5",
	"SELECT who, id FROM tx WHERE who = 'bob' ORDER BY id",
	"SELECT COUNT(*), SUM(amount), MIN(amount), MAX(amount), AVG(amount) FROM tx",
	"SELECT who, COUNT(*), SUM(amount), AVG(amount) FROM tx GROUP BY who ORDER BY who",
	"SELECT who FROM tx GROUP BY who ORDER BY who",
	"SELECT id, PREDICT(m4, f) FROM tx ORDER BY id",
	"SELECT id, PREDICT(m4, f) FROM tx WHERE id = 7",
	"WITH big AS (SELECT id, amount FROM tx WHERE amount >= 5) SELECT COUNT(*), SUM(amount) FROM big",
	"WITH b AS (SELECT id, amount, who FROM tx WHERE amount < 20) SELECT who, MAX(amount) FROM b GROUP BY who ORDER BY who",
	"(SELECT id, who FROM tx WHERE id = 3)",
	"-- point read\nSELECT id, amount FROM tx WHERE id = 11",
	"SELECT id FROM tx WHERE id = 999", // pinned, empty everywhere
}

func TestScatterMatchesSingleNode(t *testing.T) {
	const rows = 24
	ref := newRefEngine(t, rows)
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cl := newTestCluster(t, shards, rows)
			sess := cl.NewSession()
			for _, q := range matrixQueries {
				want, err := ref.Query(q)
				if err != nil {
					t.Fatalf("ref %s: %v", q, err)
				}
				got, err := cl.Exec(context.Background(), q, sess)
				if err != nil {
					t.Fatalf("cluster %s: %v", q, err)
				}
				mustEqualResults(t, q, want, got)
			}

			// Nearest: the shards' local top-k merge to the global top-k.
			query := []float32{5, 3, 2, 4}
			wantRows, wantDists, err := ref.Nearest("tx", "f", query, 3)
			if err != nil {
				t.Fatal(err)
			}
			gotRows, gotDists, err := cl.Nearest(context.Background(), "tx", "f", query, 3, sess)
			if err != nil {
				t.Fatal(err)
			}
			if len(gotRows) != len(wantRows) {
				t.Fatalf("nearest: %d rows, want %d", len(gotRows), len(wantRows))
			}
			for i := range wantRows {
				if gotDists[i] != wantDists[i] {
					t.Fatalf("nearest %d: dist %v != %v", i, gotDists[i], wantDists[i])
				}
				for j := range wantRows[i] {
					if !wantRows[i][j].Equal(gotRows[i][j]) {
						t.Fatalf("nearest row %d col %d: %v != %v", i, j, gotRows[i][j], wantRows[i][j])
					}
				}
			}
		})
	}
}

// TestPinnedVsScatterCounters checks the fast-path split is observable:
// key-pinned point reads increment the pinned counter only.
func TestPinnedVsScatterCounters(t *testing.T) {
	cl := newTestCluster(t, 4, 12)
	sess := cl.NewSession()
	p0, s0 := cl.PinnedCount(), cl.ScatterCount()
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := cl.Exec(ctx, fmt.Sprintf("SELECT id, amount FROM tx WHERE id = %d", i), sess); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Exec(ctx, "SELECT COUNT(*) FROM tx", sess); err != nil {
		t.Fatal(err)
	}
	if got := cl.PinnedCount() - p0; got != 5 {
		t.Fatalf("pinned = %d, want 5", got)
	}
	if got := cl.ScatterCount() - s0; got != 1 {
		t.Fatalf("scattered = %d, want 1", got)
	}

	reg := obs.NewRegistry()
	cl.RegisterMetrics(reg)
	snap := reg.Snapshot()
	if snap.Counter("tensorbase_shard_pinned_total") == 0 {
		t.Fatal("pinned counter not exported")
	}
	if snap.Counter("tensorbase_shard_scatter_total") == 0 {
		t.Fatal("scatter counter not exported")
	}
}

// TestKillRestartConvergence kills one shard: pinned reads for other
// shards keep serving, scattered reads and pinned reads for the dead shard
// fail retriably with ErrUnavailable, and a restart restores everything
// from the shard's durable state.
func TestKillRestartConvergence(t *testing.T) {
	const rows = 16
	cl := newTestCluster(t, 4, rows)
	sess := cl.NewSession()
	ctx := context.Background()

	// Pick two ids on different shards.
	deadID, liveID := -1, -1
	for i := 0; i < rows; i++ {
		switch ShardOf(table.IntVal(int64(i)), 4) {
		case 1:
			if deadID < 0 {
				deadID = i
			}
		case 2:
			if liveID < 0 {
				liveID = i
			}
		}
	}
	if deadID < 0 || liveID < 0 {
		t.Fatal("seed rows do not cover shards 1 and 2")
	}

	if err := cl.Nodes()[1].(*LocalNode).Kill(); err != nil {
		t.Fatal(err)
	}

	if _, err := cl.Exec(ctx, fmt.Sprintf("SELECT id FROM tx WHERE id = %d", liveID), sess); err != nil {
		t.Fatalf("pinned read for a live shard must survive: %v", err)
	}
	if _, err := cl.Exec(ctx, fmt.Sprintf("SELECT id FROM tx WHERE id = %d", deadID), sess); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("pinned read for the dead shard = %v, want ErrUnavailable", err)
	}
	if _, err := cl.Exec(ctx, "SELECT COUNT(*) FROM tx", sess); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("scattered read with a dead shard = %v, want ErrUnavailable", err)
	}

	if err := cl.Nodes()[1].(*LocalNode).Restart(); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Exec(ctx, "SELECT COUNT(*) FROM tx", sess)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int; got != rows {
		t.Fatalf("count after restart = %d, want %d", got, rows)
	}
}

// TestSessionFloors checks read-your-writes: a write raises the owning
// shard's floor, a node below the floor answers ErrLag, and the error is
// typed retriable rather than serving stale rows.
func TestSessionFloors(t *testing.T) {
	cl := newTestCluster(t, 2, 8)
	sess := cl.NewSession()
	ctx := context.Background()

	if _, err := cl.Exec(ctx, "INSERT INTO tx VALUES (100, 1.25, 'dana', [9, 9, 9, 9])", sess); err != nil {
		t.Fatal(err)
	}
	owner := ShardOf(table.IntVal(100), 2)
	if sess.floor(owner) == 0 {
		t.Fatal("write did not raise the owner shard's floor")
	}

	// Read-your-writes: the pinned read sees the insert immediately.
	res, err := cl.Exec(ctx, "SELECT id, who FROM tx WHERE id = 100", sess)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].Str != "dana" {
		t.Fatalf("read-your-writes returned %v", res.Rows)
	}

	// A floor the shard has not reached yet is a typed, retriable lag.
	node := cl.Nodes()[owner]
	if _, err := node.Query(ctx, "SELECT id FROM tx", sess.floor(owner)+1000); !errors.Is(err, ErrLag) {
		t.Fatalf("future floor = %v, want ErrLag", err)
	}
}

// TestHashDeterminism pins the property the shard map depends on: equal
// values hash equally across types' canonical forms, and the int→float
// coercion matches what the engine stores.
func TestHashDeterminism(t *testing.T) {
	if HashValue(table.IntVal(42)) != HashValue(table.IntVal(42)) {
		t.Fatal("int hash not deterministic")
	}
	if HashValue(table.TextVal("alice")) == HashValue(table.TextVal("bob")) {
		t.Fatal("suspicious text collision in test vectors")
	}
	v, err := coerceKey(table.IntVal(3), table.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if v.Type != table.Float64 || v.Float != 3.0 {
		t.Fatalf("coerced key = %v", v)
	}
	if _, err := coerceKey(table.FloatVal(1.5), table.Int64); err == nil {
		t.Fatal("1.5 must not coerce to an INT key")
	}
	spread := map[int]bool{}
	for i := 0; i < 64; i++ {
		spread[ShardOf(table.IntVal(int64(i)), 4)] = true
	}
	if len(spread) != 4 {
		t.Fatalf("64 keys landed on %d of 4 shards", len(spread))
	}
}
