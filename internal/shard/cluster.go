package shard

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"tensorbase/internal/catalog"
	"tensorbase/internal/engine"
	"tensorbase/internal/exec"
	"tensorbase/internal/nn"
	"tensorbase/internal/obs"
	"tensorbase/internal/sql"
	"tensorbase/internal/table"
)

// Cluster is the scatter-gather coordinator over a fixed set of shard
// nodes. It owns the shard map (table → key column) and plans every
// statement: pinned single-shard reads, scattered reads with exec-tree
// merges, hash-split INSERTs, and broadcast DDL/model loads.
type Cluster struct {
	nodes     []Node
	smap      *catalog.ShardMap
	pinned    atomic.Uint64
	scattered atomic.Uint64
}

// NewCluster wraps nodes with a coordinator using smap for placement.
func NewCluster(nodes []Node, smap *catalog.ShardMap) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("shard: cluster needs at least one node")
	}
	if smap == nil {
		smap = catalog.NewShardMap(len(nodes))
	}
	if smap.Shards() != len(nodes) {
		return nil, fmt.Errorf("shard: map is over %d shards, cluster has %d nodes", smap.Shards(), len(nodes))
	}
	return &Cluster{nodes: nodes, smap: smap}, nil
}

// NewLocalCluster opens n in-process shard nodes under dir (one engine per
// shard-i subdirectory) and rebuilds the shard map from node 0's catalog
// using the package convention: the shard key is the first schema column.
// That convention is what makes the map recoverable — it is derivable from
// any node's durable catalog rather than separately persisted state.
func NewLocalCluster(dir string, n int, opts engine.Options) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: cluster size %d < 1", n)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	nodes := make([]Node, n)
	for i := range nodes {
		ln, err := NewLocalNode(fmt.Sprintf("shard-%d", i), filepath.Join(dir, fmt.Sprintf("shard-%d", i)), opts)
		if err != nil {
			for _, prev := range nodes[:i] {
				prev.(*LocalNode).Close()
			}
			return nil, err
		}
		nodes[i] = ln
	}
	smap := catalog.NewShardMap(n)
	cat := nodes[0].(*LocalNode).DB().Catalog()
	for _, name := range cat.Tables() {
		te, err := cat.Table(name)
		if err != nil {
			continue
		}
		s := te.Heap.Schema()
		smap.Set(name, s.Cols[0].Name, s)
	}
	return &Cluster{nodes: nodes, smap: smap}, nil
}

// Nodes returns the cluster's nodes in shard order.
func (c *Cluster) Nodes() []Node { return c.nodes }

// Map returns the shard map.
func (c *Cluster) Map() *catalog.ShardMap { return c.smap }

// PinnedCount and ScatterCount report how many reads took each path.
func (c *Cluster) PinnedCount() uint64  { return c.pinned.Load() }
func (c *Cluster) ScatterCount() uint64 { return c.scattered.Load() }

// RegisterMetrics exposes the pinned/scatter split on reg, so the serving
// fast path is observable: a workload that should pin but scatters shows
// up immediately in the counter ratio.
func (c *Cluster) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("tensorbase_shard_pinned_total",
		"Reads routed to exactly one shard via a shard-key pin.",
		func() float64 { return float64(c.pinned.Load()) })
	reg.CounterFunc("tensorbase_shard_scatter_total",
		"Reads scattered to all shards and merged at the coordinator.",
		func() float64 { return float64(c.scattered.Load()) })
}

// Close shuts down every node that supports closing.
func (c *Cluster) Close() error {
	var first error
	for _, n := range c.nodes {
		if cl, ok := n.(interface{ Close() error }); ok {
			if err := cl.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Session carries a client's per-shard read-your-writes floors: the
// committed CSN each shard must have applied before serving this client a
// read. A nil *Session is a floorless (best-effort) client.
type Session struct {
	mu     sync.Mutex
	floors []uint64
}

// NewSession returns a fresh session over the cluster's shards.
func (c *Cluster) NewSession() *Session {
	return &Session{floors: make([]uint64, len(c.nodes))}
}

func (s *Session) floor(i int) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.floors[i]
}

// observe raises shard i's floor to csn (floors never regress).
func (s *Session) observe(i int, csn uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if csn > s.floors[i] {
		s.floors[i] = csn
	}
}

// Exec parses and runs one SQL statement against the cluster.
func (c *Cluster) Exec(ctx context.Context, sqlText string, sess *Session) (*engine.Result, error) {
	st, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	switch st := st.(type) {
	case *sql.Select:
		return c.Select(ctx, st, sess)
	case *sql.Insert:
		return c.insert(ctx, st, sess)
	case *sql.CreateTable:
		return c.createTable(ctx, st, sess)
	case *sql.DropTable:
		res, err := c.broadcastExec(ctx, sql.Render(st), sess)
		if err == nil {
			c.smap.Drop(st.Name)
		}
		return res, err
	default:
		return nil, fmt.Errorf("shard: unsupported statement %T", st)
	}
}

// broadcastExec runs one write statement on every shard in parallel and
// folds the results. Any failure fails the statement (shards that already
// applied it stay applied — broadcast DDL is not atomic across shards).
func (c *Cluster) broadcastExec(ctx context.Context, sqlText string, sess *Session) (*engine.Result, error) {
	results := make([]*engine.Result, len(c.nodes))
	csns := make([]uint64, len(c.nodes))
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n Node) {
			defer wg.Done()
			results[i], csns[i], errs[i] = n.Exec(ctx, sqlText)
		}(i, n)
	}
	wg.Wait()
	total := &engine.Result{}
	for i := range c.nodes {
		if errs[i] != nil {
			return nil, fmt.Errorf("shard %s: %w", c.nodes[i].Name(), errs[i])
		}
		sess.observe(i, csns[i])
		total.RowsAffected += results[i].RowsAffected
	}
	return total, nil
}

// createTable broadcasts the DDL and records the placement: the first
// column is the shard key.
func (c *Cluster) createTable(ctx context.Context, st *sql.CreateTable, sess *Session) (*engine.Result, error) {
	if len(st.Cols) == 0 {
		return nil, fmt.Errorf("shard: CREATE TABLE with no columns")
	}
	schema, err := table.NewSchema(st.Cols...)
	if err != nil {
		return nil, err
	}
	res, err := c.broadcastExec(ctx, sql.Render(st), sess)
	if err != nil {
		return nil, err
	}
	c.smap.Set(st.Name, st.Cols[0].Name, schema)
	return res, nil
}

// insert splits the VALUES rows by hash of the key column and sends each
// shard its slice. The split is not atomic: a failing shard leaves other
// shards' rows applied, and the error says so.
func (c *Cluster) insert(ctx context.Context, st *sql.Insert, sess *Session) (*engine.Result, error) {
	info, ok := c.smap.Info(st.Table)
	if !ok {
		return nil, fmt.Errorf("shard: unknown table %q", st.Table)
	}
	keyIdx := info.Schema.ColIndex(info.Key)
	if keyIdx < 0 {
		return nil, fmt.Errorf("shard: table %q lost key column %q", st.Table, info.Key)
	}
	parts := make([][][]sql.Literal, len(c.nodes))
	for _, row := range st.Rows {
		if keyIdx >= len(row) {
			return nil, fmt.Errorf("shard: row has %d values, key column is #%d", len(row), keyIdx+1)
		}
		key, err := coerceKey(row[keyIdx].Value, info.Schema.Cols[keyIdx].Type)
		if err != nil {
			return nil, err
		}
		i := ShardOf(key, len(c.nodes))
		parts[i] = append(parts[i], row)
	}
	results := make([]*engine.Result, len(c.nodes))
	csns := make([]uint64, len(c.nodes))
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i := range c.nodes {
		if len(parts[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub := sql.Render(&sql.Insert{Table: st.Table, Rows: parts[i]})
			results[i], csns[i], errs[i] = c.nodes[i].Exec(ctx, sub)
		}(i)
	}
	wg.Wait()
	total := &engine.Result{}
	for i := range c.nodes {
		if errs[i] != nil {
			return nil, fmt.Errorf("shard %s (insert split partially applied): %w", c.nodes[i].Name(), errs[i])
		}
		if results[i] != nil {
			sess.observe(i, csns[i])
			total.RowsAffected += results[i].RowsAffected
		}
	}
	return total, nil
}

// Select plans and runs one read. A WHERE that pins the shard key with `=`
// routes to that key's shard alone; everything else scatters.
func (c *Cluster) Select(ctx context.Context, st *sql.Select, sess *Session) (*engine.Result, error) {
	if len(st.With) > 0 {
		return c.selectCTE(ctx, st, sess)
	}
	info, ok := c.smap.Info(st.From)
	if !ok {
		return nil, fmt.Errorf("shard: unknown table %q", st.From)
	}
	if lit, pinned := st.KeyPin(info.Key); pinned {
		keyIdx := info.Schema.ColIndex(info.Key)
		if key, err := coerceKey(lit.Value, info.Schema.Cols[keyIdx].Type); err == nil {
			i := ShardOf(key, len(c.nodes))
			c.pinned.Add(1)
			res, err := c.nodes[i].Query(ctx, sql.Render(st), sess.floor(i))
			if err != nil {
				return nil, fmt.Errorf("shard %s: %w", c.nodes[i].Name(), err)
			}
			return res, nil
		}
		// A key literal the engine cannot store (e.g. 1.5 against an INT
		// key) pins nowhere; the scatter returns the same empty result a
		// single node would.
	}
	c.scattered.Add(1)
	if st.GroupBy != "" || st.HasAggregate() {
		return c.scatterAggregate(ctx, st, sess)
	}
	return c.scatterScan(ctx, st, sess)
}

// scatter fans one read to every shard and gathers the partial results in
// shard order.
func (c *Cluster) scatter(ctx context.Context, sqlText string, sess *Session) ([]*engine.Result, error) {
	results := make([]*engine.Result, len(c.nodes))
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n Node) {
			defer wg.Done()
			results[i], errs[i] = n.Query(ctx, sqlText, sess.floor(i))
		}(i, n)
	}
	wg.Wait()
	for i := range c.nodes {
		if errs[i] != nil {
			return nil, fmt.Errorf("shard %s: %w", c.nodes[i].Name(), errs[i])
		}
	}
	return results, nil
}

// mergeResult collects a merge operator tree into a Result. The reported
// snapshot is the minimum across shards — the conservative bound a
// floor re-check may hold against.
func mergeResult(op exec.Operator, results []*engine.Result) (*engine.Result, error) {
	rows, err := exec.Collect(op)
	if err != nil {
		return nil, err
	}
	snap := ^uint64(0)
	for _, r := range results {
		if r.SnapshotCSN < snap {
			snap = r.SnapshotCSN
		}
	}
	return &engine.Result{Schema: op.Schema(), Rows: rows, SnapshotCSN: snap}, nil
}

// scatterScan pushes the whole SELECT (filter, PREDICT, projection, order,
// limit) to every shard and merges: an ordered merge preserves a pushed
// ORDER BY, otherwise partials concatenate in shard order. A pushed LIMIT
// is correct per shard (each returns its local top-n) and re-applied
// globally after the merge.
func (c *Cluster) scatterScan(ctx context.Context, st *sql.Select, sess *Session) (*engine.Result, error) {
	results, err := c.scatter(ctx, sql.Render(st), sess)
	if err != nil {
		return nil, err
	}
	ins := make([]exec.Operator, len(results))
	for i, r := range results {
		ins[i] = exec.NewMemScan(r.Schema, r.Rows)
	}
	var op exec.Operator
	if st.OrderBy != "" {
		om, err := exec.NewOrderedMerge(ins, st.OrderBy, st.OrderDesc)
		if err != nil {
			return nil, err
		}
		op = om
	} else {
		cc, err := exec.NewConcat(ins...)
		if err != nil {
			return nil, err
		}
		op = cc
	}
	if st.Limit >= 0 {
		op = exec.NewLimit(op, st.Limit)
	}
	return mergeResult(op, results)
}

// scatterAggregate decomposes the aggregate into per-shard partials and a
// coordinator merge: COUNT/SUM/MIN/MAX push down unchanged, AVG becomes
// SUM+COUNT on the shards and a quotient at the merge, GROUP BY groups
// merge by key. The merged output then goes through the original
// projection order, ORDER BY, and LIMIT.
func (c *Cluster) scatterAggregate(ctx context.Context, st *sql.Select, sess *Session) (*engine.Result, error) {
	var partialItems []sql.SelectItem
	index := make(map[string]int)
	add := func(it sql.SelectItem, name string) int {
		if i, ok := index[name]; ok {
			return i
		}
		index[name] = len(partialItems)
		partialItems = append(partialItems, it)
		return len(partialItems) - 1
	}
	groupN := 0
	if st.GroupBy != "" {
		add(sql.SelectItem{Col: st.GroupBy}, st.GroupBy)
		groupN = 1
	}
	var finals []exec.FinalAgg
	for _, it := range st.Items {
		if it.Agg == nil {
			if it.Star || it.Col != st.GroupBy {
				return nil, fmt.Errorf("shard: column %q must appear in GROUP BY", it.Col)
			}
			continue
		}
		agg := it.Agg
		switch agg.Fn {
		case "COUNT":
			arg := add(sql.SelectItem{Agg: &sql.AggExpr{Fn: "COUNT"}}, "count")
			finals = append(finals, exec.FinalAgg{Kind: exec.Count, Arg: arg, As: agg.OutName()})
		case "SUM":
			arg := add(sql.SelectItem{Agg: &sql.AggExpr{Fn: "SUM", Col: agg.Col}}, "sum_"+agg.Col)
			finals = append(finals, exec.FinalAgg{Kind: exec.Sum, Arg: arg, As: agg.OutName()})
		case "AVG":
			sumArg := add(sql.SelectItem{Agg: &sql.AggExpr{Fn: "SUM", Col: agg.Col}}, "sum_"+agg.Col)
			cntArg := add(sql.SelectItem{Agg: &sql.AggExpr{Fn: "COUNT"}}, "count")
			finals = append(finals, exec.FinalAgg{Kind: exec.Avg, Arg: sumArg, Count: cntArg, As: agg.OutName()})
		case "MIN":
			arg := add(sql.SelectItem{Agg: &sql.AggExpr{Fn: "MIN", Col: agg.Col}}, "min_"+agg.Col)
			finals = append(finals, exec.FinalAgg{Kind: exec.Min, Arg: arg, As: agg.OutName()})
		case "MAX":
			arg := add(sql.SelectItem{Agg: &sql.AggExpr{Fn: "MAX", Col: agg.Col}}, "max_"+agg.Col)
			finals = append(finals, exec.FinalAgg{Kind: exec.Max, Arg: arg, As: agg.OutName()})
		default:
			return nil, fmt.Errorf("shard: unknown aggregate %q", agg.Fn)
		}
	}
	partial := &sql.Select{Items: partialItems, From: st.From, Where: st.Where, GroupBy: st.GroupBy, Limit: -1}
	results, err := c.scatter(ctx, sql.Render(partial), sess)
	if err != nil {
		return nil, err
	}
	ins := make([]exec.Operator, len(results))
	for i, r := range results {
		ins[i] = exec.NewMemScan(r.Schema, r.Rows)
	}
	var op exec.Operator
	ma, err := exec.NewMergeAggregate(ins, groupN, finals)
	if err != nil {
		return nil, err
	}
	op = ma
	// Re-project to the query's item order (the merge emits group cols
	// first, then finals in partial order).
	var cols []string
	for _, it := range st.Items {
		if it.Agg != nil {
			cols = append(cols, it.Agg.OutName())
		} else {
			cols = append(cols, it.Col)
		}
	}
	proj, err := exec.NewProject(op, cols...)
	if err != nil {
		return nil, err
	}
	op = proj
	if st.OrderBy != "" {
		srt, err := exec.NewSort(op, st.OrderBy, st.OrderDesc)
		if err != nil {
			return nil, err
		}
		op = srt
	}
	if st.Limit >= 0 {
		op = exec.NewLimit(op, st.Limit)
	}
	return mergeResult(op, results)
}

// selectCTE materialises the referenced CTE body through the cluster
// (scattering as needed), then evaluates the outer query at the
// coordinator over the gathered rows — identical semantics to the
// engine's recursive materialisation, minus PREDICT (which must run next
// to a model, i.e. inside a shard subplan, not over gathered rows).
func (c *Cluster) selectCTE(ctx context.Context, st *sql.Select, sess *Session) (*engine.Result, error) {
	idx := -1
	for i := len(st.With) - 1; i >= 0; i-- {
		if st.With[i].Name == st.From {
			idx = i
			break
		}
	}
	if idx < 0 {
		// FROM names a base table; the WITH bindings are unused.
		plain := *st
		plain.With = nil
		return c.Select(ctx, &plain, sess)
	}
	body := *st.With[idx].Query
	body.With = st.With[:idx]
	inner, err := c.Select(ctx, &body, sess)
	if err != nil {
		return nil, fmt.Errorf("shard: CTE %q: %w", st.From, err)
	}
	outer := *st
	outer.With = nil
	res, err := engine.RunMemSelect(&outer, inner.Schema, inner.Rows)
	if err != nil {
		return nil, err
	}
	res.SnapshotCSN = inner.SnapshotCSN
	return res, nil
}

// Nearest scatters a top-k vector search and merges by distance: the
// gathered candidates (each shard's local top-k, sorted ascending) merge
// into the global top-k. Ties keep shard order, then shard-local order —
// a deterministic total order under any fault schedule.
func (c *Cluster) Nearest(ctx context.Context, tbl, col string, query []float32, k int, sess *Session) ([]table.Tuple, []float64, error) {
	c.scattered.Add(1)
	type part struct {
		schema *table.Schema
		rows   []table.Tuple
		dists  []float64
	}
	parts := make([]part, len(c.nodes))
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n Node) {
			defer wg.Done()
			s, rows, dists, err := n.Nearest(ctx, tbl, col, query, k, sess.floor(i))
			parts[i], errs[i] = part{s, rows, dists}, err
		}(i, n)
	}
	wg.Wait()
	for i := range c.nodes {
		if errs[i] != nil {
			return nil, nil, fmt.Errorf("shard %s: %w", c.nodes[i].Name(), errs[i])
		}
	}
	type cand struct {
		shard, pos int
	}
	var all []cand
	for i, p := range parts {
		for j := range p.rows {
			all = append(all, cand{i, j})
		}
	}
	sort.SliceStable(all, func(a, b int) bool {
		return parts[all[a].shard].dists[all[a].pos] < parts[all[b].shard].dists[all[b].pos]
	})
	if len(all) > k {
		all = all[:k]
	}
	rows := make([]table.Tuple, len(all))
	dists := make([]float64, len(all))
	for i, cd := range all {
		rows[i] = parts[cd.shard].rows[cd.pos]
		dists[i] = parts[cd.shard].dists[cd.pos]
	}
	return rows, dists, nil
}

// LoadModel broadcasts a model to every shard, so pushed-down PREDICT
// subplans run next to their slice of the data.
func (c *Cluster) LoadModel(m *nn.Model, accuracy float64) error {
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n Node) {
			defer wg.Done()
			errs[i] = n.LoadModel(m, accuracy)
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %s: %w", c.nodes[i].Name(), err)
		}
	}
	return nil
}

// CreateVectorIndex broadcasts an ANN index build and returns the total
// indexed row count.
func (c *Cluster) CreateVectorIndex(tbl, col string) (int, error) {
	counts := make([]int, len(c.nodes))
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n Node) {
			defer wg.Done()
			counts[i], errs[i] = n.CreateVectorIndex(tbl, col)
		}(i, n)
	}
	wg.Wait()
	total := 0
	for i, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("shard %s: %w", c.nodes[i].Name(), err)
		}
		total += counts[i]
	}
	return total, nil
}
