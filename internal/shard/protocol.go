package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"tensorbase/internal/table"
)

// Wire protocol between a shard client and a shard server, carried as
// opaque payloads inside connector.FrameConn frames (which add sequencing
// and CRC). One request per connection: the client sends a single request
// frame, the server streams response frames, and the connection closes.
// That shape is what makes fault recovery trivial — any break mid-stream
// means "redial and resend the whole request", with no resumption state.
// Reads are safely retried that way; writes are not (a duplicated INSERT
// would double-apply), so write transport errors surface to the caller.

// Request kinds (first payload byte).
const (
	reqQuery byte = iota + 1
	reqExec
	reqNearest
	reqLoadModel
	reqVIndex
)

// Response kinds (first payload byte).
const (
	respSchema byte = iota + 1
	respRows
	respDists
	respDone
	respErr
)

// Typed error codes inside a respErr payload, so retriable conditions
// survive the wire.
const (
	errGeneric byte = iota
	errUnavailable
	errLag
)

// rowsPerFrame bounds one respRows frame; vector-heavy rows stay well
// under the transport's frame cap.
const rowsPerFrame = 256

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func readBytes(buf []byte) ([]byte, []byte, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || uint64(len(buf)-sz) < n {
		return nil, nil, errors.New("shard: truncated field")
	}
	return buf[sz : sz+int(n) : sz+int(n)], buf[sz+int(n):], nil
}

// encodeSchema serialises a schema: uvarint column count, then per column
// a length-prefixed name and one type byte.
func encodeSchema(buf []byte, s *table.Schema) []byte {
	buf = binary.AppendUvarint(buf, uint64(s.Len()))
	for _, c := range s.Cols {
		buf = appendBytes(buf, []byte(c.Name))
		buf = append(buf, byte(c.Type))
	}
	return buf
}

func decodeSchema(buf []byte) (*table.Schema, []byte, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || n > 1<<16 {
		return nil, nil, errors.New("shard: bad schema header")
	}
	buf = buf[sz:]
	cols := make([]table.Column, 0, n)
	for i := uint64(0); i < n; i++ {
		name, rest, err := readBytes(buf)
		if err != nil {
			return nil, nil, err
		}
		if len(rest) < 1 {
			return nil, nil, errors.New("shard: truncated column type")
		}
		cols = append(cols, table.Column{Name: string(name), Type: table.ColType(rest[0])})
		buf = rest[1:]
	}
	s, err := table.NewSchema(cols...)
	if err != nil {
		return nil, nil, err
	}
	return s, buf, nil
}

// encodeRowsFrame packs up to rowsPerFrame tuples into one respRows
// payload, each row a length-prefixed table.Encode record.
func encodeRowsFrame(s *table.Schema, rows []table.Tuple) ([]byte, error) {
	buf := []byte{respRows}
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	for _, t := range rows {
		rec, err := table.Encode(s, t)
		if err != nil {
			return nil, err
		}
		buf = appendBytes(buf, rec)
	}
	return buf, nil
}

func decodeRowsFrame(s *table.Schema, buf []byte) ([]table.Tuple, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || n > rowsPerFrame {
		return nil, errors.New("shard: bad rows frame")
	}
	buf = buf[sz:]
	rows := make([]table.Tuple, 0, n)
	for i := uint64(0); i < n; i++ {
		rec, rest, err := readBytes(buf)
		if err != nil {
			return nil, err
		}
		t, err := table.Decode(s, rec)
		if err != nil {
			return nil, err
		}
		rows = append(rows, t)
		buf = rest
	}
	return rows, nil
}

// encodeDone builds the terminal frame of a successful response.
func encodeDone(rowsAffected int64, snapshotCSN, committedCSN uint64) []byte {
	buf := make([]byte, 0, 1+24)
	buf = append(buf, respDone)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rowsAffected))
	buf = binary.LittleEndian.AppendUint64(buf, snapshotCSN)
	buf = binary.LittleEndian.AppendUint64(buf, committedCSN)
	return buf
}

func decodeDone(buf []byte) (rowsAffected int64, snapshotCSN, committedCSN uint64, err error) {
	if len(buf) != 24 {
		return 0, 0, 0, errors.New("shard: bad done frame")
	}
	return int64(binary.LittleEndian.Uint64(buf)),
		binary.LittleEndian.Uint64(buf[8:]),
		binary.LittleEndian.Uint64(buf[16:]), nil
}

// encodeErr wraps an error for the wire, preserving its retriability class.
func encodeErr(err error) []byte {
	code := errGeneric
	switch {
	case errors.Is(err, ErrUnavailable):
		code = errUnavailable
	case errors.Is(err, ErrLag):
		code = errLag
	}
	return append([]byte{respErr, code}, err.Error()...)
}

// decodeErr rebuilds a typed error from a respErr payload body (after the
// kind byte).
func decodeErr(buf []byte) error {
	if len(buf) < 1 {
		return errors.New("shard: bad error frame")
	}
	msg := string(buf[1:])
	switch buf[0] {
	case errUnavailable:
		return fmt.Errorf("%w: %s", ErrUnavailable, msg)
	case errLag:
		return fmt.Errorf("%w: %s", ErrLag, msg)
	default:
		return errors.New(msg)
	}
}

// encodeQueryReq builds a reqQuery payload: floor, then the SQL text.
func encodeQueryReq(sqlText string, floor uint64) []byte {
	buf := make([]byte, 0, 9+len(sqlText))
	buf = append(buf, reqQuery)
	buf = binary.LittleEndian.AppendUint64(buf, floor)
	return append(buf, sqlText...)
}

// encodeExecReq builds a reqExec payload.
func encodeExecReq(sqlText string) []byte {
	return append([]byte{reqExec}, sqlText...)
}

// encodeNearestReq builds a reqNearest payload.
func encodeNearestReq(tbl, col string, query []float32, k int, floor uint64) []byte {
	buf := []byte{reqNearest}
	buf = binary.LittleEndian.AppendUint64(buf, floor)
	buf = appendBytes(buf, []byte(tbl))
	buf = appendBytes(buf, []byte(col))
	buf = binary.AppendUvarint(buf, uint64(k))
	buf = binary.AppendUvarint(buf, uint64(len(query)))
	for _, f := range query {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(f))
	}
	return buf
}

func decodeNearestReq(buf []byte) (tbl, col string, query []float32, k int, floor uint64, err error) {
	if len(buf) < 8 {
		return "", "", nil, 0, 0, errors.New("shard: truncated nearest request")
	}
	floor = binary.LittleEndian.Uint64(buf)
	buf = buf[8:]
	tb, buf, err := readBytes(buf)
	if err != nil {
		return "", "", nil, 0, 0, err
	}
	cb, buf, err := readBytes(buf)
	if err != nil {
		return "", "", nil, 0, 0, err
	}
	ku, sz := binary.Uvarint(buf)
	if sz <= 0 || ku > 1<<20 {
		return "", "", nil, 0, 0, errors.New("shard: bad k")
	}
	buf = buf[sz:]
	dim, sz := binary.Uvarint(buf)
	if sz <= 0 || uint64(len(buf)-sz) != 4*dim {
		return "", "", nil, 0, 0, errors.New("shard: bad query vector")
	}
	buf = buf[sz:]
	query = make([]float32, dim)
	for i := range query {
		query[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return string(tb), string(cb), query, int(ku), floor, nil
}

// encodeDistsFrame carries Nearest distances, parallel to the preceding
// rows frames.
func encodeDistsFrame(dists []float64) []byte {
	buf := []byte{respDists}
	buf = binary.AppendUvarint(buf, uint64(len(dists)))
	for _, d := range dists {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d))
	}
	return buf
}

func decodeDistsFrame(buf []byte) ([]float64, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || uint64(len(buf)-sz) != 8*n {
		return nil, errors.New("shard: bad distances frame")
	}
	buf = buf[sz:]
	dists := make([]float64, n)
	for i := range dists {
		dists[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return dists, nil
}

// encodeLoadModelReq ships a serialised model plus its accuracy.
func encodeLoadModelReq(blob []byte, accuracy float64) []byte {
	buf := []byte{reqLoadModel}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(accuracy))
	return append(buf, blob...)
}

// encodeVIndexReq requests an ANN index build.
func encodeVIndexReq(tbl, col string) []byte {
	buf := []byte{reqVIndex}
	buf = appendBytes(buf, []byte(tbl))
	return appendBytes(buf, []byte(col))
}

func decodeVIndexReq(buf []byte) (tbl, col string, err error) {
	tb, buf, err := readBytes(buf)
	if err != nil {
		return "", "", err
	}
	cb, _, err := readBytes(buf)
	if err != nil {
		return "", "", err
	}
	return string(tb), string(cb), nil
}

// splitKind pops the request/response kind byte.
func splitKind(payload []byte) (byte, []byte, error) {
	if len(payload) == 0 {
		return 0, nil, errors.New("shard: empty payload")
	}
	return payload[0], payload[1:], nil
}
