package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"tensorbase/internal/engine"
	"tensorbase/internal/fault"
	"tensorbase/internal/table"
)

// newRemoteCluster stands up n shard engines behind TCP servers whose
// response paths run through the given fault links (one per shard, nil
// entries mean perfect wires), and a coordinator of RemoteNodes dialing
// them. Data is loaded through the coordinator while the links are clean;
// callers then dial the fault probabilities up for the read phase.
func newRemoteCluster(t *testing.T, n, rows int, links []*fault.Link) *Cluster {
	t.Helper()
	nodes := make([]Node, n)
	for i := 0; i < n; i++ {
		local, err := NewLocalNode(fmt.Sprintf("shard-%d", i), fmt.Sprintf("%s/shard-%d", t.TempDir(), i), engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { local.Close() })
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		var link *fault.Link
		if links != nil {
			link = links[i]
		}
		srv := Serve(ln, local, link)
		t.Cleanup(func() { srv.Close() })
		rn := NewRemoteNode(fmt.Sprintf("shard-%d", i), ln.Addr().String())
		rn.SetTimeout(300 * time.Millisecond)
		rn.SetRetries(30)
		nodes[i] = rn
	}
	cl, err := NewCluster(nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess := cl.NewSession()
	for _, s := range seedSQL(rows) {
		if _, err := cl.Exec(context.Background(), s, sess); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.LoadModel(testModel(), 0.9); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CreateVectorIndex("tx", "f"); err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestRemoteScatterUnderFaults runs the identity matrix against a TCP
// cluster whose response streams drop, duplicate, and reorder frames on a
// seeded schedule: clients must reconnect and retry until every result is
// bit-identical to the single-node reference.
func TestRemoteScatterUnderFaults(t *testing.T) {
	const rows = 24
	ref := newRefEngine(t, rows)
	for _, seed := range []int64{1, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			links := make([]*fault.Link, 2)
			for i := range links {
				links[i] = fault.NewLink(seed + int64(i))
			}
			cl := newRemoteCluster(t, 2, rows, links)
			sess := cl.NewSession()
			for _, l := range links {
				l.SetDrop(0.03)
				l.SetDuplicate(0.05)
				l.SetReorder(0.03)
			}
			for _, q := range matrixQueries {
				want, err := ref.Query(q)
				if err != nil {
					t.Fatalf("ref %s: %v", q, err)
				}
				got, err := cl.Exec(context.Background(), q, sess)
				if err != nil {
					t.Fatalf("cluster %s: %v", q, err)
				}
				mustEqualResults(t, q, want, got)
			}
			gotRows, _, err := cl.Nearest(context.Background(), "tx", "f", []float32{5, 3, 2, 4}, 3, sess)
			if err != nil {
				t.Fatal(err)
			}
			if len(gotRows) != 3 {
				t.Fatalf("nearest under faults returned %d rows", len(gotRows))
			}
			dropped := links[0].Dropped() + links[1].Dropped()
			if dropped == 0 {
				t.Fatal("fault schedule never dropped a frame; the test is not exercising retries")
			}
		})
	}
}

// TestRemotePartition black-holes one shard's response path: pinned reads
// for the other shard keep serving, scatters fail retriably, and healing
// the partition restores scatters.
func TestRemotePartition(t *testing.T) {
	const rows = 16
	links := []*fault.Link{fault.NewLink(1), fault.NewLink(2)}
	cl := newRemoteCluster(t, 2, rows, links)
	sess := cl.NewSession()
	ctx := context.Background()

	// Shorten the partition detection so the test stays fast.
	for _, n := range cl.Nodes() {
		rn := n.(*RemoteNode)
		rn.SetTimeout(100 * time.Millisecond)
		rn.SetRetries(2)
	}

	// Find ids owned by each shard, plus an unused id owned by the
	// partitioned shard for the write probe.
	id0, id1, newID1 := -1, -1, -1
	for i := 0; i < rows; i++ {
		if ShardOf(table.IntVal(int64(i)), 2) == 0 && id0 < 0 {
			id0 = i
		}
		if ShardOf(table.IntVal(int64(i)), 2) == 1 && id1 < 0 {
			id1 = i
		}
	}
	for i := 500; ; i++ {
		if ShardOf(table.IntVal(int64(i)), 2) == 1 {
			newID1 = i
			break
		}
	}

	links[1].SetPartitioned(true)

	if _, err := cl.Exec(ctx, fmt.Sprintf("SELECT id FROM tx WHERE id = %d", id0), sess); err != nil {
		t.Fatalf("pinned read through the healthy link failed: %v", err)
	}
	if _, err := cl.Exec(ctx, fmt.Sprintf("SELECT id FROM tx WHERE id = %d", id1), sess); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("pinned read through the partition = %v, want ErrUnavailable", err)
	}
	if _, err := cl.Exec(ctx, "SELECT COUNT(*) FROM tx", sess); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("scatter through the partition = %v, want ErrUnavailable", err)
	}
	// Writes must NOT burn retries through a partition (a delivered-but-
	// unacknowledged INSERT retried would double-apply): first transport
	// failure surfaces.
	if _, err := cl.Exec(ctx, fmt.Sprintf("INSERT INTO tx VALUES (%d, 0.5, 'eve', [1, 1, 1, 1])", newID1), sess); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("write through the partition = %v, want ErrUnavailable", err)
	}

	links[1].SetPartitioned(false)
	res, err := cl.Exec(ctx, "SELECT COUNT(*) FROM tx", sess)
	if err != nil {
		t.Fatalf("scatter after healing: %v", err)
	}
	if res.Rows[0][0].Int < rows {
		t.Fatalf("count after healing = %d, want >= %d", res.Rows[0][0].Int, rows)
	}
}
