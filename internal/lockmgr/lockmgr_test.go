package lockmgr

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tensorbase/internal/lifecycle"
)

func acquire(t *testing.T, m *Manager, req Request) *Held {
	t.Helper()
	h, err := m.Acquire(nil, req)
	if err != nil {
		t.Fatalf("acquire %+v: %v", req, err)
	}
	return h
}

func sharedReq(tables ...string) Request {
	var r Request
	for _, tn := range tables {
		r.Tables = append(r.Tables, TableLock{Table: tn, Mode: Shared})
	}
	return r
}

func exclusiveReq(tables ...string) Request {
	var r Request
	for _, tn := range tables {
		r.Tables = append(r.Tables, TableLock{Table: tn, Mode: Exclusive})
	}
	return r
}

// tryAcquire reports whether req can be acquired without blocking past the
// given grace period.
func tryAcquire(m *Manager, req Request, grace time.Duration) (*Held, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	tok, stop := lifecycle.Watch(ctx)
	defer stop()
	h, err := m.Acquire(tok, req)
	return h, err == nil
}

func TestSharedLocksCoexist(t *testing.T) {
	m := New()
	h1 := acquire(t, m, sharedReq("t"))
	h2 := acquire(t, m, sharedReq("t"))
	h1.Release()
	h2.Release()
}

func TestExclusiveExcludes(t *testing.T) {
	m := New()
	h := acquire(t, m, exclusiveReq("t"))
	if _, ok := tryAcquire(m, sharedReq("t"), 20*time.Millisecond); ok {
		t.Fatal("shared acquired while exclusive held")
	}
	if _, ok := tryAcquire(m, exclusiveReq("t"), 20*time.Millisecond); ok {
		t.Fatal("second exclusive acquired while exclusive held")
	}
	// A different table is independent.
	h2, ok := tryAcquire(m, exclusiveReq("u"), time.Second)
	if !ok {
		t.Fatal("independent table blocked")
	}
	h2.Release()
	h.Release()
	h3, ok := tryAcquire(m, exclusiveReq("t"), time.Second)
	if !ok {
		t.Fatal("exclusive not granted after release")
	}
	h3.Release()
}

func TestSharedBlocksExclusive(t *testing.T) {
	m := New()
	h := acquire(t, m, sharedReq("t"))
	if _, ok := tryAcquire(m, exclusiveReq("t"), 20*time.Millisecond); ok {
		t.Fatal("exclusive acquired while shared held")
	}
	h.Release()
}

func TestDDLLatchSerialisesDDL(t *testing.T) {
	m := New()
	h := acquire(t, m, Request{DDL: true})
	if _, ok := tryAcquire(m, Request{DDL: true}, 20*time.Millisecond); ok {
		t.Fatal("two DDL latches granted")
	}
	// The latch does not block plain table access.
	h2, ok := tryAcquire(m, sharedReq("t"), time.Second)
	if !ok {
		t.Fatal("table lock blocked by DDL latch")
	}
	h2.Release()
	h.Release()
}

func TestCancelledWaiterReturnsContextError(t *testing.T) {
	m := New()
	h := acquire(t, m, exclusiveReq("t"))
	defer h.Release()
	ctx, cancel := context.WithCancel(context.Background())
	tok, stop := lifecycle.Watch(ctx)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		_, err := m.Acquire(tok, sharedReq("t"))
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter did not return")
	}
	if m.Stats().Cancelled != 1 {
		t.Fatalf("cancelled = %d, want 1", m.Stats().Cancelled)
	}
}

func TestCancelledWriterUnblocksQueuedReaders(t *testing.T) {
	m := New()
	h := acquire(t, m, sharedReq("t"))
	// Queue a writer behind the reader, then a reader behind the writer.
	ctx, cancel := context.WithCancel(context.Background())
	tok, stop := lifecycle.Watch(ctx)
	defer stop()
	werr := make(chan error, 1)
	go func() {
		_, err := m.Acquire(tok, exclusiveReq("t"))
		werr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	rdone := make(chan *Held, 1)
	go func() {
		h2, err := m.Acquire(nil, sharedReq("t"))
		if err != nil {
			panic(err)
		}
		rdone <- h2
	}()
	// FIFO: the queued reader must wait behind the queued writer.
	select {
	case <-rdone:
		t.Fatal("reader jumped the queued writer")
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	if err := <-werr; err == nil {
		t.Fatal("cancelled writer acquired")
	}
	select {
	case h2 := <-rdone:
		h2.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("reader still blocked after writer cancelled")
	}
	h.Release()
}

func TestDuplicateTablesCollapseToStrongestMode(t *testing.T) {
	m := New()
	h := acquire(t, m, Request{Tables: []TableLock{
		{Table: "t", Mode: Shared},
		{Table: "t", Mode: Exclusive},
	}})
	if _, ok := tryAcquire(m, sharedReq("t"), 20*time.Millisecond); ok {
		t.Fatal("duplicate set did not hold exclusively")
	}
	h.Release()
	h2, ok := tryAcquire(m, exclusiveReq("t"), time.Second)
	if !ok {
		t.Fatal("lock not fully released after duplicate-set release")
	}
	h2.Release()
}

func TestReleaseIsIdempotent(t *testing.T) {
	m := New()
	h := acquire(t, m, Request{DDL: true, Tables: []TableLock{{Table: "t", Mode: Exclusive}}})
	h.Release()
	h.Release()
	h2 := acquire(t, m, Request{DDL: true, Tables: []TableLock{{Table: "t", Mode: Exclusive}}})
	h2.Release()
}

func TestLockMapDoesNotLeak(t *testing.T) {
	m := New()
	for i := 0; i < 100; i++ {
		h := acquire(t, m, exclusiveReq("t", "u", "v"))
		h.Release()
	}
	m.mu.Lock()
	n := len(m.tables)
	m.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d lock entries leaked", n)
	}
}

// TestHammerMixedModes drives shared/exclusive/DDL acquisitions (some of
// them cancelled mid-wait) across goroutines under -race, asserting mutual
// exclusion with a plain int only ever touched under the exclusive lock.
func TestHammerMixedModes(t *testing.T) {
	m := New()
	var (
		wg      sync.WaitGroup
		val     int // guarded by t's exclusive lock
		readers atomic.Int64
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch (g + i) % 4 {
				case 0: // writer
					h := acquire(t, m, exclusiveReq("t"))
					if r := readers.Load(); r != 0 {
						panic("writer saw live readers")
					}
					val++
					h.Release()
				case 1, 2: // reader
					h := acquire(t, m, sharedReq("t"))
					readers.Add(1)
					_ = val
					readers.Add(-1)
					h.Release()
				case 3: // DDL + table, sometimes cancelled
					ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%3)*100*time.Microsecond)
					tok, stop := lifecycle.Watch(ctx)
					h, err := m.Acquire(tok, Request{DDL: true, Tables: []TableLock{{Table: "t", Mode: Exclusive}}})
					if err == nil {
						if r := readers.Load(); r != 0 {
							panic("DDL writer saw live readers")
						}
						val++
						h.Release()
					}
					stop()
					cancel()
				}
			}
		}(g)
	}
	wg.Wait()
	// All locks must be released and the map empty.
	m.mu.Lock()
	n := len(m.tables)
	m.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d lock entries leaked after hammer", n)
	}
	if got := m.Stats().Acquired; got == 0 {
		t.Fatal("no acquisitions recorded")
	}
}
