// Package lockmgr is the engine's statement-scoped concurrency-control
// layer: a lock manager handing out per-table reader/writer locks plus one
// catalog-wide DDL latch. It is what turns "not safe for concurrent DDL"
// into a guarantee — every SQL statement acquires its full lock set before
// touching any table, readers share, writers and DDL exclude, and a DROP
// can safely reclaim a heap's pages because nothing else can hold them.
//
// Design points:
//
//   - Statement scoped, not transaction scoped: the engine has autocommit
//     statements only, so a lock set lives exactly as long as one
//     statement. There is no lock upgrade anywhere, which is what makes
//     the deadlock-freedom argument below airtight.
//
//   - Deterministic acquisition order: the DDL latch first, then tables in
//     sorted name order. Every statement acquires its entire set up front
//     through Manager.Acquire, so two statements can only ever wait on each
//     other in one direction — cyclic waits are impossible.
//
//   - Cancellation-aware waits: acquisition observes the statement's
//     lifecycle.Token, so a statement blocked behind a long writer still
//     honours its context deadline or a client disconnect. A cancelled
//     waiter removes itself from the queue (or releases the lock if the
//     grant raced the cancellation) and returns the context's error.
//
//   - Fair FIFO granting: a lock with waiters grants strictly in arrival
//     order (consecutive readers are granted together), so a stream of
//     readers cannot starve a writer and vice versa.
//
// The manager tracks per-table locks in a reference-counted map: entries
// exist only while held or waited on, so dropping and recreating tables
// does not leak lock state.
package lockmgr

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"tensorbase/internal/lifecycle"
)

// Mode is a lock mode.
type Mode int

const (
	// Shared is the reader mode: any number of holders.
	Shared Mode = iota
	// Exclusive is the writer mode: a single holder, no readers.
	Exclusive
)

func (m Mode) String() string {
	if m == Exclusive {
		return "exclusive"
	}
	return "shared"
}

// TableLock names one table and the mode to take on it.
type TableLock struct {
	Table string
	Mode  Mode
}

// Request is a statement's full lock set, acquired atomically-in-order by
// Manager.Acquire.
type Request struct {
	// DDL takes the catalog DDL latch exclusively (CREATE/DROP). The
	// latch serialises catalog shape changes against each other; table
	// data access is protected by the per-table locks.
	DDL bool
	// Tables are the per-table locks to take. Acquire sorts them by name;
	// duplicate names collapse to the strongest requested mode.
	Tables []TableLock
}

// Stats are the manager's cumulative counters.
type Stats struct {
	Acquired  int64 // lock sets successfully acquired
	Waits     int64 // individual lock acquisitions that had to block
	Cancelled int64 // acquisitions abandoned by a cancelled statement
}

// Manager hands out lock sets. The zero value is not usable; call New.
type Manager struct {
	mu     sync.Mutex
	tables map[string]*lock
	ddl    *lock

	acquired  atomic.Int64
	waits     atomic.Int64
	cancelled atomic.Int64
}

// New returns an empty lock manager.
func New() *Manager {
	return &Manager{
		tables: make(map[string]*lock),
		ddl:    newLock(),
	}
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Acquired:  m.acquired.Load(),
		Waits:     m.waits.Load(),
		Cancelled: m.cancelled.Load(),
	}
}

// Held is an acquired lock set. Release returns every lock; it is
// idempotent.
type Held struct {
	m        *Manager
	ddl      bool
	tables   []TableLock // sorted, deduplicated
	released bool
}

// Acquire takes req's full lock set in the canonical order (DDL latch,
// then tables sorted by name), blocking as needed. A nil token never
// cancels; otherwise a token that fires while any lock in the set is still
// being waited on aborts the acquisition, releases everything taken so
// far, and returns the context's error.
func (m *Manager) Acquire(tok *lifecycle.Token, req Request) (*Held, error) {
	tables := normalize(req.Tables)
	h := &Held{m: m, ddl: req.DDL, tables: tables[:0]}
	if req.DDL {
		if err := m.acquireOne(m.ddl, Exclusive, tok); err != nil {
			m.cancelled.Add(1)
			return nil, err
		}
	}
	for _, tl := range tables {
		l := m.ref(tl.Table)
		if err := m.acquireOne(l, tl.Mode, tok); err != nil {
			m.unref(tl.Table)
			h.Release()
			m.cancelled.Add(1)
			return nil, err
		}
		h.tables = append(h.tables, tl)
	}
	m.acquired.Add(1)
	return h, nil
}

// Release returns every lock in the set. Safe to call more than once.
func (h *Held) Release() {
	if h == nil || h.released {
		return
	}
	h.released = true
	// Release in reverse acquisition order (tables, then the DDL latch).
	for i := len(h.tables) - 1; i >= 0; i-- {
		tl := h.tables[i]
		h.m.mu.Lock()
		l := h.m.tables[tl.Table]
		h.m.mu.Unlock()
		if l == nil {
			panic(fmt.Sprintf("lockmgr: release of untracked table %q", tl.Table))
		}
		l.release(tl.Mode)
		h.m.unref(tl.Table)
	}
	if h.ddl {
		h.m.ddl.release(Exclusive)
	}
}

// normalize sorts the table set by name and collapses duplicates to the
// strongest mode, producing the canonical acquisition order.
func normalize(in []TableLock) []TableLock {
	if len(in) == 0 {
		return nil
	}
	out := make([]TableLock, 0, len(in))
	byName := make(map[string]int, len(in))
	for _, tl := range in {
		if i, dup := byName[tl.Table]; dup {
			if tl.Mode == Exclusive {
				out[i].Mode = Exclusive
			}
			continue
		}
		byName[tl.Table] = len(out)
		out = append(out, tl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	for i, tl := range out {
		byName[tl.Table] = i
	}
	return out
}

// ref returns the named table's lock, creating it (refcounted) on demand.
func (m *Manager) ref(name string) *lock {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.tables[name]
	if !ok {
		l = newLock()
		m.tables[name] = l
	}
	l.refs++
	return l
}

// unref drops one reference to the named table's lock, deleting idle
// entries so dropped tables do not accumulate lock state.
func (m *Manager) unref(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := m.tables[name]
	if l == nil {
		return
	}
	l.refs--
	if l.refs <= 0 {
		delete(m.tables, name)
	}
}

// acquireOne blocks until one lock is granted or tok fires.
func (m *Manager) acquireOne(l *lock, mode Mode, tok *lifecycle.Token) error {
	w := l.enqueue(mode)
	if w == nil {
		return nil // granted immediately
	}
	m.waits.Add(1)
	select {
	case <-w.granted:
		return nil
	case <-tok.Done():
		if l.abandon(w) {
			// The grant raced the cancellation: we own the lock, give it
			// back so queued waiters behind us make progress.
			l.release(mode)
		}
		return tok.Cause()
	}
}

// lock is one cancellation-aware FIFO reader/writer lock.
type lock struct {
	mu      sync.Mutex
	readers int
	writer  bool
	queue   []*waiter
	// refs counts holders + waiters + in-progress acquisitions, managed
	// by Manager under its own mutex.
	refs int
}

type waiter struct {
	mode    Mode
	granted chan struct{}
	// done records that the grant happened; read back by abandon under
	// the lock's mutex to disambiguate a cancel/grant race.
	done bool
}

func newLock() *lock { return &lock{} }

// grantable reports whether mode can be granted right now.
func (l *lock) grantable(mode Mode) bool {
	if mode == Exclusive {
		return !l.writer && l.readers == 0
	}
	return !l.writer
}

// enqueue grants immediately (returning nil) when the lock is free and no
// one is queued ahead, else appends a waiter.
func (l *lock) enqueue(mode Mode) *waiter {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.queue) == 0 && l.grantable(mode) {
		l.take(mode)
		return nil
	}
	w := &waiter{mode: mode, granted: make(chan struct{})}
	l.queue = append(l.queue, w)
	return w
}

func (l *lock) take(mode Mode) {
	if mode == Exclusive {
		l.writer = true
	} else {
		l.readers++
	}
}

// release returns one grant and promotes queued waiters FIFO.
func (l *lock) release(mode Mode) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if mode == Exclusive {
		if !l.writer {
			panic("lockmgr: exclusive release of a lock not held exclusively")
		}
		l.writer = false
	} else {
		if l.readers <= 0 {
			panic("lockmgr: shared release of a lock with no readers")
		}
		l.readers--
	}
	l.promote()
}

// promote grants from the head of the queue while possible: one writer, or
// a maximal run of consecutive readers. Called with l.mu held.
func (l *lock) promote() {
	for len(l.queue) > 0 {
		w := l.queue[0]
		if !l.grantable(w.mode) {
			return
		}
		l.take(w.mode)
		w.done = true
		close(w.granted)
		l.queue = l.queue[1:]
		if w.mode == Exclusive {
			return
		}
	}
}

// abandon removes a cancelled waiter from the queue. It returns true when
// the waiter had already been granted (the caller then owns the lock and
// must release it).
func (l *lock) abandon(w *waiter) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if w.done {
		return true
	}
	for i, q := range l.queue {
		if q == w {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			break
		}
	}
	// Removing a queued writer can unblock readers queued behind it.
	l.promote()
	return false
}
