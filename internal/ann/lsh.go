package ann

import (
	"fmt"
	"math/rand"
)

// LSH is a random-hyperplane locality-sensitive-hashing index: L hash
// tables, each hashing a vector to a k-bit signature of hyperplane signs.
// Candidates from all tables are re-ranked exactly. Sec. 5 of the paper
// lists LSH among the vector-index options for the inference-result cache.
type LSH struct {
	dim    int
	bits   int
	tables []lshTable
	ids    []int64
	vecs   [][]float32
}

type lshTable struct {
	planes  [][]float32 // bits × dim
	buckets map[uint64][]int32
}

// LSHConfig tunes the index.
type LSHConfig struct {
	Tables int   // number of hash tables (default 8)
	Bits   int   // hyperplanes per table, <= 64 (default 12)
	Seed   int64 // hyperplane RNG seed
}

// NewLSH returns an empty LSH index of the given dimension.
func NewLSH(dim int, cfg LSHConfig) *LSH {
	if cfg.Tables <= 0 {
		cfg.Tables = 8
	}
	if cfg.Bits <= 0 {
		cfg.Bits = 12
	}
	if cfg.Bits > 64 {
		cfg.Bits = 64
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	l := &LSH{dim: dim, bits: cfg.Bits, tables: make([]lshTable, cfg.Tables)}
	for t := range l.tables {
		planes := make([][]float32, cfg.Bits)
		for b := range planes {
			p := make([]float32, dim)
			for j := range p {
				p[j] = float32(rng.NormFloat64())
			}
			planes[b] = p
		}
		l.tables[t] = lshTable{planes: planes, buckets: make(map[uint64][]int32)}
	}
	return l
}

func (t *lshTable) signature(vec []float32) uint64 {
	var sig uint64
	for b, plane := range t.planes {
		var dot float64
		for j, v := range vec {
			dot += float64(v) * float64(plane[j])
		}
		if dot >= 0 {
			sig |= 1 << uint(b)
		}
	}
	return sig
}

// Add implements Index.
func (l *LSH) Add(id int64, vec []float32) error {
	if err := checkDim(l.dim, vec); err != nil {
		return err
	}
	idx := int32(len(l.ids))
	l.ids = append(l.ids, id)
	l.vecs = append(l.vecs, append([]float32(nil), vec...))
	for t := range l.tables {
		sig := l.tables[t].signature(vec)
		l.tables[t].buckets[sig] = append(l.tables[t].buckets[sig], idx)
	}
	return nil
}

// Search implements Index: it unions the query's buckets across tables and
// re-ranks the candidates exactly.
func (l *LSH) Search(vec []float32, k int) ([]Result, error) {
	if err := checkDim(l.dim, vec); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("ann: k must be >= 1, got %d", k)
	}
	seen := make(map[int32]bool)
	var best resultHeap
	for t := range l.tables {
		sig := l.tables[t].signature(vec)
		for _, idx := range l.tables[t].buckets[sig] {
			if seen[idx] {
				continue
			}
			seen[idx] = true
			keepBest(&best, Result{ID: l.ids[idx], Dist: SquaredL2(vec, l.vecs[idx])}, k)
		}
	}
	return drainSorted(&best), nil
}

// Len implements Index.
func (l *LSH) Len() int { return len(l.ids) }
