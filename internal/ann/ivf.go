package ann

import (
	"fmt"
	"math/rand"
	"sort"
)

// IVF is an inverted-file index with a k-means coarse quantizer: vectors
// are assigned to their nearest centroid's posting list, and queries probe
// the NProbe closest lists with exact re-ranking. The quantizer trains
// lazily on the first search and retrains when the index has grown
// substantially since.
type IVF struct {
	dim     int
	nlist   int
	nprobe  int
	iters   int
	seed    int64
	ids     []int64
	vecs    [][]float32
	centers [][]float32
	lists   [][]int32
	trained int // number of vectors when the quantizer was last trained
}

// IVFConfig tunes the index.
type IVFConfig struct {
	NList  int   // number of coarse clusters (default 16)
	NProbe int   // clusters probed per query (default 4)
	Iters  int   // k-means iterations (default 10)
	Seed   int64 // k-means init seed
}

// NewIVF returns an empty IVF-flat index of the given dimension.
func NewIVF(dim int, cfg IVFConfig) *IVF {
	if cfg.NList <= 0 {
		cfg.NList = 16
	}
	if cfg.NProbe <= 0 {
		cfg.NProbe = 4
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 10
	}
	return &IVF{dim: dim, nlist: cfg.NList, nprobe: cfg.NProbe, iters: cfg.Iters, seed: cfg.Seed}
}

// Add implements Index. New vectors join a posting list immediately if the
// quantizer is trained; retraining happens lazily when the index doubles.
func (f *IVF) Add(id int64, vec []float32) error {
	if err := checkDim(f.dim, vec); err != nil {
		return err
	}
	idx := int32(len(f.ids))
	f.ids = append(f.ids, id)
	f.vecs = append(f.vecs, append([]float32(nil), vec...))
	if f.centers != nil {
		c := f.nearestCenter(vec)
		f.lists[c] = append(f.lists[c], idx)
	}
	return nil
}

// Len implements Index.
func (f *IVF) Len() int { return len(f.ids) }

func (f *IVF) nearestCenter(vec []float32) int {
	best, bestD := 0, SquaredL2(vec, f.centers[0])
	for c := 1; c < len(f.centers); c++ {
		if d := SquaredL2(vec, f.centers[c]); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// train runs k-means over the stored vectors and rebuilds the posting
// lists.
func (f *IVF) train() {
	n := len(f.vecs)
	k := f.nlist
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(f.seed))
	// Init centers on distinct random vectors.
	perm := rng.Perm(n)
	f.centers = make([][]float32, k)
	for i := 0; i < k; i++ {
		f.centers[i] = append([]float32(nil), f.vecs[perm[i]]...)
	}
	assign := make([]int, n)
	for it := 0; it < f.iters; it++ {
		for i, v := range f.vecs {
			assign[i] = f.nearestCenter(v)
		}
		sums := make([][]float64, k)
		counts := make([]int, k)
		for i := range sums {
			sums[i] = make([]float64, f.dim)
		}
		for i, v := range f.vecs {
			c := assign[i]
			counts[c]++
			for j, x := range v {
				sums[c][j] += float64(x)
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster on a random vector.
				f.centers[c] = append([]float32(nil), f.vecs[rng.Intn(n)]...)
				continue
			}
			for j := range f.centers[c] {
				f.centers[c][j] = float32(sums[c][j] / float64(counts[c]))
			}
		}
	}
	f.lists = make([][]int32, k)
	for i, v := range f.vecs {
		c := f.nearestCenter(v)
		f.lists[c] = append(f.lists[c], int32(i))
	}
	f.trained = n
}

// Search implements Index.
func (f *IVF) Search(vec []float32, k int) ([]Result, error) {
	if err := checkDim(f.dim, vec); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("ann: k must be >= 1, got %d", k)
	}
	if len(f.vecs) == 0 {
		return nil, nil
	}
	if f.centers == nil || len(f.vecs) > 2*f.trained {
		f.train()
	}
	// Rank centers by distance and probe the closest nprobe lists.
	type cd struct {
		c int
		d float64
	}
	order := make([]cd, len(f.centers))
	for c := range f.centers {
		order[c] = cd{c, SquaredL2(vec, f.centers[c])}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].d < order[j].d })
	probe := f.nprobe
	if probe > len(order) {
		probe = len(order)
	}
	var best resultHeap
	for _, o := range order[:probe] {
		for _, idx := range f.lists[o.c] {
			keepBest(&best, Result{ID: f.ids[idx], Dist: SquaredL2(vec, f.vecs[idx])}, k)
		}
	}
	return drainSorted(&best), nil
}
