package ann

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// HNSW is a hierarchical navigable small world graph (Malkov & Yashunin),
// the index the paper's Sec. 7.2.2 uses (via Faiss) to cache inference
// results. Insertions assign each node a geometric random level; searches
// greedily descend the upper layers and run a beam search of width efSearch
// on the bottom layer.
type HNSW struct {
	dim            int
	m              int // max neighbours per node per layer (2m on layer 0)
	efConstruction int
	efSearch       int
	ml             float64
	rng            *rand.Rand

	nodes      []hnswNode
	entryPoint int
	maxLevel   int
}

type hnswNode struct {
	id        int64
	vec       []float32
	neighbors [][]int32 // per level
}

// HNSWConfig tunes index construction and search.
type HNSWConfig struct {
	M              int   // neighbours per layer (default 16)
	EfConstruction int   // beam width during insertion (default 200)
	EfSearch       int   // beam width during search (default 64)
	Seed           int64 // level-assignment RNG seed
}

// NewHNSW returns an empty HNSW index of the given dimension.
func NewHNSW(dim int, cfg HNSWConfig) *HNSW {
	if cfg.M <= 0 {
		cfg.M = 16
	}
	if cfg.EfConstruction <= 0 {
		cfg.EfConstruction = 200
	}
	if cfg.EfSearch <= 0 {
		cfg.EfSearch = 64
	}
	return &HNSW{
		dim:            dim,
		m:              cfg.M,
		efConstruction: cfg.EfConstruction,
		efSearch:       cfg.EfSearch,
		ml:             1 / math.Log(float64(cfg.M)),
		rng:            rand.New(rand.NewSource(cfg.Seed)),
		entryPoint:     -1,
	}
}

// SetEfSearch adjusts the search beam width (recall/latency trade-off).
func (h *HNSW) SetEfSearch(ef int) {
	if ef > 0 {
		h.efSearch = ef
	}
}

// Len implements Index.
func (h *HNSW) Len() int { return len(h.nodes) }

// randomLevel draws the node level from the standard geometric
// distribution floor(-ln(U)·mL).
func (h *HNSW) randomLevel() int {
	return int(-math.Log(h.rng.Float64()+1e-12) * h.ml)
}

// Add implements Index.
func (h *HNSW) Add(id int64, vec []float32) error {
	if err := checkDim(h.dim, vec); err != nil {
		return err
	}
	level := h.randomLevel()
	node := hnswNode{
		id:        id,
		vec:       append([]float32(nil), vec...),
		neighbors: make([][]int32, level+1),
	}
	idx := len(h.nodes)
	h.nodes = append(h.nodes, node)

	if h.entryPoint < 0 {
		h.entryPoint = idx
		h.maxLevel = level
		return nil
	}

	ep := h.entryPoint
	// Greedy descent through layers above the new node's level.
	for l := h.maxLevel; l > level; l-- {
		ep = h.greedyClosest(vec, ep, l)
	}
	// Insert with beam search from min(level, maxLevel) down to 0.
	for l := min(level, h.maxLevel); l >= 0; l-- {
		cands := h.searchLayer(vec, ep, h.efConstruction, l)
		maxConn := h.m
		if l == 0 {
			maxConn = 2 * h.m
		}
		selected := h.selectHeuristic(cands, maxConn)
		for _, c := range selected {
			ci := int(c.ID) // searchLayer returns node indices in ID
			h.nodes[idx].neighbors[l] = append(h.nodes[idx].neighbors[l], int32(ci))
			h.nodes[ci].neighbors[l] = append(h.nodes[ci].neighbors[l], int32(idx))
			h.pruneNeighbors(ci, l, maxConn)
		}
		if len(cands) > 0 {
			ep = int(cands[0].ID)
		}
	}
	if level > h.maxLevel {
		h.maxLevel = level
		h.entryPoint = idx
	}
	return nil
}

// selectHeuristic implements the neighbour-selection heuristic of the HNSW
// paper (Algorithm 4): walk the candidates closest-first and keep one only
// if it is closer to the query than to every already-selected neighbour.
// This preserves links across clusters that pure closest-M selection would
// discard, which is what keeps the graph navigable on clustered data.
// Candidates must arrive sorted closest-first; Result.ID holds node indices.
func (h *HNSW) selectHeuristic(cands []Result, maxConn int) []Result {
	if len(cands) <= maxConn {
		return cands
	}
	selected := make([]Result, 0, maxConn)
	for _, c := range cands {
		if len(selected) >= maxConn {
			break
		}
		ok := true
		for _, s := range selected {
			if SquaredL2(h.nodes[c.ID].vec, h.nodes[s.ID].vec) < c.Dist {
				ok = false
				break
			}
		}
		if ok {
			selected = append(selected, c)
		}
	}
	// Backfill with the closest skipped candidates if the heuristic was
	// too selective.
	if len(selected) < maxConn {
		chosen := make(map[int64]bool, len(selected))
		for _, s := range selected {
			chosen[s.ID] = true
		}
		for _, c := range cands {
			if len(selected) >= maxConn {
				break
			}
			if !chosen[c.ID] {
				selected = append(selected, c)
			}
		}
	}
	return selected
}

// pruneNeighbors trims node n's layer-l adjacency back to maxConn with the
// same diversity heuristic used at insertion. Pruning by pure closest-M
// instead provably disconnects clustered data: once a cluster's nodes reach
// full degree, every long cross-cluster edge is the farthest and gets
// dropped, leaving layer 0 partitioned.
func (h *HNSW) pruneNeighbors(n, l, maxConn int) {
	adj := h.nodes[n].neighbors[l]
	if len(adj) <= maxConn {
		return
	}
	cands := make([]Result, 0, len(adj))
	for _, nb := range adj {
		cands = append(cands, Result{ID: int64(nb), Dist: SquaredL2(h.nodes[n].vec, h.nodes[nb].vec)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Dist < cands[j].Dist })
	best := h.selectHeuristic(cands, maxConn)
	out := adj[:0]
	for _, r := range best {
		out = append(out, int32(r.ID))
	}
	h.nodes[n].neighbors[l] = out
}

// greedyClosest walks layer l greedily from ep toward vec.
func (h *HNSW) greedyClosest(vec []float32, ep, l int) int {
	cur := ep
	curDist := SquaredL2(vec, h.nodes[cur].vec)
	for {
		improved := false
		for _, nb := range h.nodes[cur].neighbors[l] {
			if d := SquaredL2(vec, h.nodes[nb].vec); d < curDist {
				cur, curDist = int(nb), d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// candHeap is a min-heap of Results by distance (best on top): the search
// frontier. Like resultHeap, hand-rolled to avoid heap.Interface boxing on
// the Search hot path.
type candHeap []Result

func (h *candHeap) push(r Result) {
	s := append(*h, r)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].Dist <= s[i].Dist {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
	*h = s
}

func (h *candHeap) pop() Result {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(s) && s[l].Dist < s[small].Dist {
			small = l
		}
		if r < len(s) && s[r].Dist < s[small].Dist {
			small = r
		}
		if small == i {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	*h = s
	return top
}

// searchLayer runs a beam search of width ef on layer l and returns the
// closest candidates (node indices in Result.ID), closest first.
func (h *HNSW) searchLayer(vec []float32, ep, ef, l int) []Result {
	visited := make([]bool, len(h.nodes))
	visited[ep] = true
	d0 := SquaredL2(vec, h.nodes[ep].vec)
	frontier := candHeap{{ID: int64(ep), Dist: d0}}
	best := resultHeap{{ID: int64(ep), Dist: d0}}

	for len(frontier) > 0 {
		cur := frontier.pop()
		if best.Len() >= ef && cur.Dist > best[0].Dist {
			break
		}
		for _, nb := range h.nodes[cur.ID].neighbors[l] {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			d := SquaredL2(vec, h.nodes[nb].vec)
			if best.Len() < ef || d < best[0].Dist {
				frontier.push(Result{ID: int64(nb), Dist: d})
				keepBest(&best, Result{ID: int64(nb), Dist: d}, ef)
			}
		}
	}
	return drainSorted(&best)
}

// Search implements Index.
func (h *HNSW) Search(vec []float32, k int) ([]Result, error) {
	if err := checkDim(h.dim, vec); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("ann: k must be >= 1, got %d", k)
	}
	if h.entryPoint < 0 {
		return nil, nil
	}
	ep := h.entryPoint
	for l := h.maxLevel; l > 0; l-- {
		ep = h.greedyClosest(vec, ep, l)
	}
	ef := h.efSearch
	if ef < k {
		ef = k
	}
	cands := h.searchLayer(vec, ep, ef, 0)
	if len(cands) > k {
		cands = cands[:k]
	}
	// Map node indices back to user ids.
	out := make([]Result, len(cands))
	for i, c := range cands {
		out[i] = Result{ID: h.nodes[c.ID].id, Dist: c.Dist}
	}
	return out, nil
}
