package ann

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// clusteredData generates n vectors in `classes` Gaussian clusters, the
// shape of real feature/embedding workloads.
func clusteredData(rng *rand.Rand, n, dim, classes int, spread float64) ([][]float32, []int) {
	centers := make([][]float64, classes)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = rng.NormFloat64() * 5
		}
	}
	vecs := make([][]float32, n)
	labels := make([]int, n)
	for i := range vecs {
		c := rng.Intn(classes)
		labels[i] = c
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(centers[c][j] + rng.NormFloat64()*spread)
		}
		vecs[i] = v
	}
	return vecs, labels
}

func TestSquaredL2(t *testing.T) {
	if got := SquaredL2([]float32{0, 3}, []float32{4, 0}); got != 25 {
		t.Fatalf("SquaredL2 = %v", got)
	}
}

func TestBruteExactOrder(t *testing.T) {
	b := NewBrute(2)
	pts := [][]float32{{0, 0}, {1, 0}, {3, 0}, {10, 0}}
	for i, p := range pts {
		if err := b.Add(int64(i), p); err != nil {
			t.Fatal(err)
		}
	}
	res, err := b.Search([]float32{0.9, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[0].ID != 1 || res[1].ID != 0 || res[2].ID != 2 {
		t.Fatalf("Search = %v", res)
	}
	if res[0].Dist >= res[1].Dist {
		t.Fatal("results not closest-first")
	}
}

func TestIndexValidation(t *testing.T) {
	for _, idx := range []Index{
		NewBrute(3),
		NewHNSW(3, HNSWConfig{}),
		NewLSH(3, LSHConfig{}),
		NewIVF(3, IVFConfig{}),
	} {
		if err := idx.Add(1, []float32{1, 2}); err == nil {
			t.Fatalf("%T: wrong-dimension Add must error", idx)
		}
		if err := idx.Add(1, []float32{1, 2, 3}); err != nil {
			t.Fatalf("%T: %v", idx, err)
		}
		if _, err := idx.Search([]float32{1}, 1); err == nil {
			t.Fatalf("%T: wrong-dimension Search must error", idx)
		}
		if _, err := idx.Search([]float32{1, 2, 3}, 0); err == nil {
			t.Fatalf("%T: k=0 must error", idx)
		}
		if idx.Len() != 1 {
			t.Fatalf("%T: Len = %d", idx, idx.Len())
		}
	}
}

func TestEmptyIndexSearch(t *testing.T) {
	for _, idx := range []Index{NewHNSW(3, HNSWConfig{}), NewIVF(3, IVFConfig{})} {
		res, err := idx.Search([]float32{1, 2, 3}, 5)
		if err != nil {
			t.Fatalf("%T: %v", idx, err)
		}
		if len(res) != 0 {
			t.Fatalf("%T: empty index returned %v", idx, res)
		}
	}
}

// recallAtK measures |approx ∩ exact| / k averaged over queries.
func recallAtK(t *testing.T, idx Index, exact *Brute, queries [][]float32, k int) float64 {
	t.Helper()
	var hits, total int
	for _, q := range queries {
		want, err := exact.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := idx.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		wantIDs := make(map[int64]bool, len(want))
		for _, r := range want {
			wantIDs[r.ID] = true
		}
		for _, r := range got {
			if wantIDs[r.ID] {
				hits++
			}
		}
		total += len(want)
	}
	return float64(hits) / float64(total)
}

func buildAll(t *testing.T, vecs [][]float32, idxs ...Index) {
	t.Helper()
	for i, v := range vecs {
		for _, idx := range idxs {
			if err := idx.Add(int64(i), v); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestHNSWRecallOnClusteredData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Queries share the data distribution, matching the result-cache use
	// case (queries similar to previously cached feature vectors).
	all, _ := clusteredData(rng, 2050, 16, 10, 1.0)
	vecs, queries := all[:2000], all[2000:]
	exact := NewBrute(16)
	h := NewHNSW(16, HNSWConfig{M: 16, EfConstruction: 100, EfSearch: 64, Seed: 42})
	buildAll(t, vecs, exact, h)
	if r := recallAtK(t, h, exact, queries, 10); r < 0.9 {
		t.Fatalf("HNSW recall@10 = %.3f, want >= 0.9", r)
	}
}

func TestHNSWEfSearchTradeoff(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	all, _ := clusteredData(rng, 1540, 12, 8, 1.2)
	vecs, queries := all[:1500], all[1500:]
	exact := NewBrute(12)
	h := NewHNSW(12, HNSWConfig{M: 8, EfConstruction: 60, Seed: 7})
	buildAll(t, vecs, exact, h)
	h.SetEfSearch(4)
	low := recallAtK(t, h, exact, queries, 10)
	h.SetEfSearch(128)
	high := recallAtK(t, h, exact, queries, 10)
	if high < low {
		t.Fatalf("recall must not decrease with efSearch: %.3f → %.3f", low, high)
	}
	if high < 0.85 {
		t.Fatalf("recall at ef=128 is %.3f, want >= 0.85", high)
	}
}

func TestHNSWExactTop1OnSeparatedPoints(t *testing.T) {
	// With well-separated points, the top-1 neighbour must be exact.
	h := NewHNSW(2, HNSWConfig{Seed: 3})
	pts := [][]float32{{0, 0}, {10, 0}, {0, 10}, {10, 10}, {5, 5}}
	for i, p := range pts {
		if err := h.Add(int64(i), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range pts {
		res, err := h.Search(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || res[0].ID != int64(i) || res[0].Dist != 0 {
			t.Fatalf("query %d: %v", i, res)
		}
	}
}

func TestLSHFindsNearDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewLSH(8, LSHConfig{Tables: 10, Bits: 10, Seed: 5})
	base := make([]float32, 8)
	for j := range base {
		base[j] = float32(rng.NormFloat64())
	}
	if err := l.Add(100, base); err != nil {
		t.Fatal(err)
	}
	// Add distant noise.
	for i := 0; i < 200; i++ {
		v := make([]float32, 8)
		for j := range v {
			v[j] = float32(rng.NormFloat64() * 10)
		}
		if err := l.Add(int64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	// Query with a tiny perturbation of base: LSH must find it.
	q := append([]float32(nil), base...)
	q[0] += 0.001
	res, err := l.Search(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].ID != 100 {
		t.Fatalf("LSH missed the near-duplicate: %v", res)
	}
}

func TestLSHRecallReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vecs, _ := clusteredData(rng, 1000, 10, 6, 0.8)
	exact := NewBrute(10)
	l := NewLSH(10, LSHConfig{Tables: 12, Bits: 10, Seed: 8})
	buildAll(t, vecs, exact, l)
	queries := vecs[:40] // self-queries are in-bucket by construction
	if r := recallAtK(t, l, exact, queries, 5); r < 0.5 {
		t.Fatalf("LSH recall@5 = %.3f, want >= 0.5", r)
	}
}

func TestIVFRecallOnClusteredData(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	all, _ := clusteredData(rng, 2040, 12, 8, 0.8)
	vecs, queries := all[:2000], all[2000:]
	exact := NewBrute(12)
	f := NewIVF(12, IVFConfig{NList: 16, NProbe: 4, Seed: 10})
	buildAll(t, vecs, exact, f)
	if r := recallAtK(t, f, exact, queries, 10); r < 0.8 {
		t.Fatalf("IVF recall@10 = %.3f, want >= 0.8", r)
	}
}

func TestIVFRetrainsAfterGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := NewIVF(4, IVFConfig{NList: 4, NProbe: 4, Seed: 12})
	vecs, _ := clusteredData(rng, 50, 4, 4, 0.5)
	buildAll(t, vecs, f)
	if _, err := f.Search(vecs[0], 1); err != nil { // triggers first train
		t.Fatal(err)
	}
	more, _ := clusteredData(rng, 500, 4, 4, 0.5)
	for i, v := range more {
		if err := f.Add(int64(100+i), v); err != nil {
			t.Fatal(err)
		}
	}
	// After 10x growth the lazy retrain must kick in and recall must hold.
	exact := NewBrute(4)
	buildAll(t, vecs, exact)
	for i, v := range more {
		if err := exact.Add(int64(100+i), v); err != nil {
			t.Fatal(err)
		}
		_ = i
	}
	if r := recallAtK(t, f, exact, more[:30], 5); r < 0.7 {
		t.Fatalf("IVF recall after growth = %.3f, want >= 0.7", r)
	}
}

// Property: every index returns results sorted by distance, with distances
// consistent with SquaredL2 against the stored vectors.
func TestResultsSortedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 2 + rng.Intn(6)
		n := 10 + rng.Intn(100)
		vecs, _ := clusteredData(rng, n, dim, 3, 1)
		idxs := []Index{
			NewBrute(dim),
			NewHNSW(dim, HNSWConfig{Seed: seed}),
			NewLSH(dim, LSHConfig{Seed: seed}),
			NewIVF(dim, IVFConfig{Seed: seed}),
		}
		for i, v := range vecs {
			for _, idx := range idxs {
				if idx.Add(int64(i), v) != nil {
					return false
				}
			}
		}
		q := vecs[rng.Intn(n)]
		for _, idx := range idxs {
			res, err := idx.Search(q, 5)
			if err != nil {
				return false
			}
			for i := 1; i < len(res); i++ {
				if res[i].Dist < res[i-1].Dist {
					return false
				}
			}
			for _, r := range res {
				if math.IsNaN(r.Dist) || r.Dist < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestHNSWConcurrentSearch asserts the read path is safe to share: a frozen
// graph serves many goroutines searching in parallel (the result cache holds
// its read lock over exactly this call). Run under -race in the ROADMAP
// race tier.
func TestHNSWConcurrentSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	vecs, _ := clusteredData(rng, 500, 16, 8, 0.3)
	h := NewHNSW(16, HNSWConfig{Seed: 51})
	for i, v := range vecs {
		if err := h.Add(int64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				q := vecs[(i*7+w)%len(vecs)]
				res, err := h.Search(q, 5)
				if err != nil || len(res) == 0 {
					t.Errorf("search: %v (%d results)", err, len(res))
					return
				}
				if res[0].Dist != 0 {
					t.Errorf("exact query did not return itself first (dist %g)", res[0].Dist)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
