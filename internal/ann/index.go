// Package ann implements the approximate-nearest-neighbour indexes the
// paper proposes to embed in the RDBMS for inference-result caching
// (Sec. 5): hierarchical navigable small world graphs (HNSW, the index used
// in the Sec. 7.2.2 validation), random-hyperplane LSH, IVF-flat with a
// k-means coarse quantizer, and a brute-force index for ground truth.
package ann

import (
	"fmt"
	"sort"
)

// Result is one neighbour: the stored id and its squared L2 distance to the
// query.
type Result struct {
	ID   int64
	Dist float64
}

// Index is a vector index over float32 vectors of a fixed dimension.
type Index interface {
	// Add inserts a vector under id. Ids need not be unique, but lookups
	// return whichever copies the index finds.
	Add(id int64, vec []float32) error
	// Search returns up to k nearest neighbours, closest first.
	Search(vec []float32, k int) ([]Result, error)
	// Len returns the number of stored vectors.
	Len() int
}

// SquaredL2 returns the squared Euclidean distance between two vectors of
// equal length.
func SquaredL2(a, b []float32) float64 {
	var s float64
	for i, v := range a {
		d := float64(v) - float64(b[i])
		s += d * d
	}
	return s
}

func checkDim(dim int, vec []float32) error {
	if len(vec) != dim {
		return fmt.Errorf("ann: vector has dimension %d, index wants %d", len(vec), dim)
	}
	return nil
}

// Brute is an exact index by linear scan: the ground truth for recall
// measurements and a correct fallback for small caches.
type Brute struct {
	dim  int
	ids  []int64
	vecs [][]float32
}

// NewBrute returns an exact linear-scan index of the given dimension.
func NewBrute(dim int) *Brute { return &Brute{dim: dim} }

// Add implements Index.
func (b *Brute) Add(id int64, vec []float32) error {
	if err := checkDim(b.dim, vec); err != nil {
		return err
	}
	b.ids = append(b.ids, id)
	b.vecs = append(b.vecs, append([]float32(nil), vec...))
	return nil
}

// Search implements Index.
func (b *Brute) Search(vec []float32, k int) ([]Result, error) {
	if err := checkDim(b.dim, vec); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("ann: k must be >= 1, got %d", k)
	}
	res := make([]Result, 0, len(b.ids))
	for i, v := range b.vecs {
		res = append(res, Result{ID: b.ids[i], Dist: SquaredL2(vec, v)})
	}
	sort.Slice(res, func(i, j int) bool { return res[i].Dist < res[j].Dist })
	if len(res) > k {
		res = res[:k]
	}
	return res, nil
}

// Len implements Index.
func (b *Brute) Len() int { return len(b.ids) }

// resultHeap is a max-heap of Results by distance (worst on top), used to
// keep the best k while scanning candidates. The sift operations are
// hand-rolled rather than layered on container/heap: pushing through
// heap.Interface boxes every Result in an interface value, and that
// allocation churn dominated Search profiles on cache-sized graphs.
type resultHeap []Result

func (h resultHeap) Len() int { return len(h) }

func (h *resultHeap) push(r Result) {
	s := append(*h, r)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].Dist >= s[i].Dist {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
	*h = s
}

func (h *resultHeap) pop() Result {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	s.siftDown(0)
	*h = s
	return top
}

func (h resultHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h) && h[l].Dist > h[big].Dist {
			big = l
		}
		if r < len(h) && h[r].Dist > h[big].Dist {
			big = r
		}
		if big == i {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// keepBest pushes r into h, keeping at most k entries.
func keepBest(h *resultHeap, r Result, k int) {
	if h.Len() < k {
		h.push(r)
		return
	}
	if r.Dist < (*h)[0].Dist {
		(*h)[0] = r
		h.siftDown(0)
	}
}

// drainSorted empties h into a closest-first slice.
func drainSorted(h *resultHeap) []Result {
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = h.pop()
	}
	return out
}
