// Package fault is a deterministic fault-point API for exercising the
// storage and connector layers under failing hardware. Components expose
// named fault points ("disk.read", "disk.write", "connector.frame", ...)
// and call Check / CheckData at those points; tests install an Injector
// with a schedule saying which occurrences of which points fail, and with
// what error. Schedules are driven either by explicit occurrence indices
// or by a seeded PRNG, so every failing run is exactly reproducible.
//
// A nil *Injector is valid and injects nothing, so production code holds a
// possibly-nil injector and pays one nil check per fault point when fault
// injection is off.
package fault

import (
	"fmt"
	"math/rand"
	"sync"
)

// Injector holds fault rules keyed by point name and counts every visit to
// every point. It is safe for concurrent use.
type Injector struct {
	mu     sync.Mutex
	rules  map[string][]*rule
	counts map[string]uint64
	fired  map[string]uint64
}

// rule is one scheduled fault for a point. Exactly one scheduling mode is
// set per rule (explicit occurrences, after-N, every-Nth, or seeded
// probability); err is nil for corruption rules, which flip bits instead of
// returning an error.
type rule struct {
	err     error
	at      map[uint64]struct{}
	after   uint64
	every   uint64
	prob    float64
	rng     *rand.Rand
	corrupt bool
}

// New returns an empty injector.
func New() *Injector {
	return &Injector{
		rules:  make(map[string][]*rule),
		counts: make(map[string]uint64),
		fired:  make(map[string]uint64),
	}
}

func (i *Injector) add(point string, r *rule) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules[point] = append(i.rules[point], r)
}

// FailAt schedules err at the given 1-based occurrences of point: FailAt("disk.read", e, 3)
// fails the third read only.
func (i *Injector) FailAt(point string, err error, occurrences ...uint64) {
	at := make(map[uint64]struct{}, len(occurrences))
	for _, n := range occurrences {
		at[n] = struct{}{}
	}
	i.add(point, &rule{err: err, at: at})
}

// FailAfter schedules err for every occurrence of point from the nth on
// (1-based): FailAfter("disk.write", e, 1) fails all writes.
func (i *Injector) FailAfter(point string, err error, n uint64) {
	if n == 0 {
		n = 1
	}
	i.add(point, &rule{err: err, after: n})
}

// FailEvery schedules err at every nth occurrence of point.
func (i *Injector) FailEvery(point string, err error, n uint64) {
	if n == 0 {
		n = 1
	}
	i.add(point, &rule{err: err, every: n})
}

// FailSeeded schedules err at each occurrence of point with probability
// prob, drawn from a PRNG seeded with seed — random-looking but exactly
// reproducible schedules for soak tests.
func (i *Injector) FailSeeded(point string, err error, seed int64, prob float64) {
	i.add(point, &rule{err: err, prob: prob, rng: rand.New(rand.NewSource(seed))})
}

// CorruptAt schedules a deterministic single-bit flip in the buffer passed
// to CheckData at the given 1-based occurrences of point. The flipped bit
// position is derived from the occurrence index, so a corrupted run is
// byte-for-byte reproducible.
func (i *Injector) CorruptAt(point string, occurrences ...uint64) {
	at := make(map[uint64]struct{}, len(occurrences))
	for _, n := range occurrences {
		at[n] = struct{}{}
	}
	i.add(point, &rule{at: at, corrupt: true})
}

// fires reports whether r fires at occurrence n (1-based).
func (r *rule) fires(n uint64) bool {
	switch {
	case r.at != nil:
		_, hit := r.at[n]
		return hit
	case r.after > 0:
		return n >= r.after
	case r.every > 0:
		return n%r.every == 0
	case r.rng != nil:
		return r.rng.Float64() < r.prob
	}
	return false
}

// Check visits point and returns the scheduled error, if any fires at this
// occurrence. Nil injector: no fault, no bookkeeping.
func (i *Injector) Check(point string) error {
	if i == nil {
		return nil
	}
	err, _ := i.visit(point, nil)
	return err
}

// CheckData visits a point that owns a data buffer (a page just read, a
// frame about to be sent): error rules behave as in Check, and corruption
// rules flip one deterministic bit of buf in place. A corruption rule that
// fires returns nil — the caller's integrity check (page checksum, frame
// CRC) is what must catch it.
func (i *Injector) CheckData(point string, buf []byte) error {
	if i == nil {
		return nil
	}
	err, _ := i.visit(point, buf)
	return err
}

func (i *Injector) visit(point string, buf []byte) (error, uint64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.counts[point]++
	n := i.counts[point]
	for _, r := range i.rules[point] {
		if !r.fires(n) {
			continue
		}
		i.fired[point]++
		if r.corrupt {
			if len(buf) > 0 {
				// Knuth multiplicative hash of the occurrence index picks
				// the bit, so the damage pattern is schedule-determined.
				bit := (n * 0x9E3779B97F4A7C15) % uint64(len(buf)*8)
				buf[bit/8] ^= 1 << (bit % 8)
			}
			continue
		}
		return fmt.Errorf("fault: %s occurrence %d: %w", point, n, r.err), n
	}
	return nil, n
}

// Count returns how many times point has been visited.
func (i *Injector) Count(point string) uint64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.counts[point]
}

// Fired returns how many faults (errors or corruptions) have been injected
// at point.
func (i *Injector) Fired(point string) uint64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fired[point]
}

// Clear removes all rules for point, keeping its visit count.
func (i *Injector) Clear(point string) {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	delete(i.rules, point)
}

// Reset removes every rule and zeroes every counter.
func (i *Injector) Reset() {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules = make(map[string][]*rule)
	i.counts = make(map[string]uint64)
	i.fired = make(map[string]uint64)
}
