package fault

import (
	"testing"
	"time"
)

func TestLinkNilIsPerfect(t *testing.T) {
	var l *Link
	for i := 0; i < 10; i++ {
		if v := l.Next(); v.Drop || v.Dup || v.Hold || v.Delay != 0 {
			t.Fatalf("nil link produced verdict %+v", v)
		}
	}
	if l.Partitioned() || l.Dropped() != 0 || l.Delivered() != 0 {
		t.Fatal("nil link has state")
	}
	l.SetPartitioned(true) // must not panic
}

func TestLinkCleanByDefault(t *testing.T) {
	l := NewLink(1)
	for i := 0; i < 1000; i++ {
		if v := l.Next(); v.Drop || v.Dup || v.Hold || v.Delay != 0 {
			t.Fatalf("clean link produced verdict %+v at frame %d", v, i)
		}
	}
	if got := l.Delivered(); got != 1000 {
		t.Fatalf("Delivered = %d, want 1000", got)
	}
}

func TestLinkSeededDeterminism(t *testing.T) {
	run := func() []Verdict {
		l := NewLink(42)
		l.SetDrop(0.2)
		l.SetDuplicate(0.2)
		l.SetReorder(0.2)
		l.SetDelay(0.2, time.Millisecond)
		out := make([]Verdict, 500)
		for i := range out {
			out[i] = l.Next()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d: %+v vs %+v — same seed must give same schedule", i, a[i], b[i])
		}
	}
}

func TestLinkFaultsActuallyFire(t *testing.T) {
	l := NewLink(7)
	l.SetDrop(0.3)
	l.SetDuplicate(0.3)
	l.SetReorder(0.3)
	for i := 0; i < 2000; i++ {
		l.Next()
	}
	if l.Dropped() == 0 || l.Duplicated() == 0 || l.Reordered() == 0 {
		t.Fatalf("after 2000 frames: dropped=%d dup=%d reordered=%d — some fault never fired",
			l.Dropped(), l.Duplicated(), l.Reordered())
	}
	total := l.Dropped() + l.Duplicated() + l.Reordered()
	if total == 0 || total > 2000 {
		t.Fatalf("implausible fault total %d", total)
	}
}

func TestLinkVerdictsAreExclusive(t *testing.T) {
	l := NewLink(9)
	l.SetDrop(0.5)
	l.SetDuplicate(0.5)
	l.SetReorder(0.5)
	for i := 0; i < 2000; i++ {
		v := l.Next()
		n := 0
		if v.Drop {
			n++
		}
		if v.Dup {
			n++
		}
		if v.Hold {
			n++
		}
		if n > 1 {
			t.Fatalf("frame %d: verdict %+v sets multiple modes", i, v)
		}
		if v.Drop && v.Delay != 0 {
			t.Fatalf("frame %d: dropped frame has a delay", i)
		}
	}
}

func TestLinkPartitionBlackHoles(t *testing.T) {
	l := NewLink(3)
	l.SetPartitioned(true)
	if !l.Partitioned() {
		t.Fatal("Partitioned() = false after SetPartitioned(true)")
	}
	for i := 0; i < 100; i++ {
		if v := l.Next(); !v.Drop {
			t.Fatalf("frame %d delivered through a partition: %+v", i, v)
		}
	}
	if l.Dropped() != 100 || l.Delivered() != 0 {
		t.Fatalf("dropped=%d delivered=%d, want 100/0", l.Dropped(), l.Delivered())
	}
	l.SetPartitioned(false)
	if v := l.Next(); v.Drop {
		t.Fatal("frame dropped after the partition healed")
	}
	if l.Delivered() != 1 {
		t.Fatalf("Delivered = %d after heal, want 1", l.Delivered())
	}
}

func TestLinkReleasedCountsDelivery(t *testing.T) {
	l := NewLink(5)
	l.Released()
	if l.Delivered() != 1 {
		t.Fatalf("Delivered = %d after Released, want 1", l.Delivered())
	}
}
