package fault

import (
	"errors"
	"sync"
	"testing"
)

var errBoom = errors.New("boom")

func TestNilInjectorIsNoop(t *testing.T) {
	var inj *Injector
	if err := inj.Check("p"); err != nil {
		t.Fatalf("nil injector injected: %v", err)
	}
	if err := inj.CheckData("p", []byte{1}); err != nil {
		t.Fatalf("nil injector injected: %v", err)
	}
	if inj.Count("p") != 0 || inj.Fired("p") != 0 {
		t.Fatal("nil injector counted")
	}
	inj.Clear("p")
	inj.Reset()
}

func TestFailAt(t *testing.T) {
	inj := New()
	inj.FailAt("p", errBoom, 2, 4)
	var got []bool
	for i := 0; i < 5; i++ {
		got = append(got, inj.Check("p") != nil)
	}
	want := []bool{false, true, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("occurrence %d: fired=%v, want %v", i+1, got[i], want[i])
		}
	}
	if inj.Count("p") != 5 || inj.Fired("p") != 2 {
		t.Fatalf("count=%d fired=%d, want 5/2", inj.Count("p"), inj.Fired("p"))
	}
	if err := inj.Check("other"); err != nil {
		t.Fatalf("unrelated point fired: %v", err)
	}
}

func TestFailAfterAndEvery(t *testing.T) {
	inj := New()
	inj.FailAfter("a", errBoom, 3)
	for i := 1; i <= 5; i++ {
		err := inj.Check("a")
		if (err != nil) != (i >= 3) {
			t.Fatalf("after: occurrence %d: err=%v", i, err)
		}
		if err != nil && !errors.Is(err, errBoom) {
			t.Fatalf("after: error does not wrap cause: %v", err)
		}
	}
	inj.FailEvery("e", errBoom, 2)
	for i := 1; i <= 6; i++ {
		if got := inj.Check("e") != nil; got != (i%2 == 0) {
			t.Fatalf("every: occurrence %d fired=%v", i, got)
		}
	}
}

func TestSeededIsDeterministic(t *testing.T) {
	run := func() []bool {
		inj := New()
		inj.FailSeeded("p", errBoom, 42, 0.3)
		out := make([]bool, 100)
		for i := range out {
			out[i] = inj.Check("p") != nil
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded schedule diverged at occurrence %d", i+1)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("seeded schedule degenerate: %d/100 fired", fired)
	}
}

func TestCorruptAtFlipsExactlyOneBitDeterministically(t *testing.T) {
	flip := func() []byte {
		inj := New()
		inj.CorruptAt("p", 1)
		buf := make([]byte, 64)
		if err := inj.CheckData("p", buf); err != nil {
			t.Fatalf("corruption rule returned error: %v", err)
		}
		return buf
	}
	a, b := flip(), flip()
	bits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("corruption not deterministic")
		}
		for k := 0; k < 8; k++ {
			if a[i]&(1<<k) != 0 {
				bits++
			}
		}
	}
	if bits != 1 {
		t.Fatalf("flipped %d bits, want 1", bits)
	}
}

func TestConcurrentChecks(t *testing.T) {
	inj := New()
	inj.FailEvery("p", errBoom, 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				inj.Check("p")
				inj.CheckData("p2", []byte{0})
			}
		}()
	}
	wg.Wait()
	if inj.Count("p") != 8000 || inj.Fired("p") != 800 {
		t.Fatalf("count=%d fired=%d, want 8000/800", inj.Count("p"), inj.Fired("p"))
	}
}

func TestClearAndReset(t *testing.T) {
	inj := New()
	inj.FailAfter("p", errBoom, 1)
	if inj.Check("p") == nil {
		t.Fatal("rule did not fire")
	}
	inj.Clear("p")
	if inj.Check("p") != nil {
		t.Fatal("cleared rule fired")
	}
	if inj.Count("p") != 2 {
		t.Fatalf("Clear dropped counts: %d", inj.Count("p"))
	}
	inj.Reset()
	if inj.Count("p") != 0 {
		t.Fatal("Reset kept counts")
	}
}
