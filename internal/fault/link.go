package fault

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Verdict is a Link's per-frame decision. Exactly one of Drop/Dup/Hold is
// set (or none, for clean delivery); Delay may accompany any non-drop
// verdict.
type Verdict struct {
	// Drop discards the frame entirely (also the partition behaviour).
	Drop bool
	// Dup delivers the frame twice back to back.
	Dup bool
	// Hold buffers the frame and releases it after the next frame — a
	// one-slot reorder, the minimal out-of-order delivery a stream
	// protocol must reject.
	Hold bool
	// Delay is an artificial in-flight latency to sleep before delivery.
	Delay time.Duration
}

// Link models a lossy, reorderable network link for the replication
// transport. The sender calls Next for every outgoing frame and acts on the
// verdict; all randomness comes from one seeded PRNG so a chaos schedule is
// exactly reproducible. A nil *Link is a perfect network.
//
// Unlike Injector's named fault points, a Link is owned by a single
// connection: drop/reorder/duplicate faults are properties of a wire, not
// of a code location, and a partition must atomically black-hole every
// frame on that wire until healed.
type Link struct {
	mu     sync.Mutex
	rng    *rand.Rand
	drop   float64
	dup    float64
	hold   float64
	delayP float64
	delayD time.Duration

	partitioned atomic.Bool

	delivered  atomic.Uint64
	dropped    atomic.Uint64
	duplicated atomic.Uint64
	reordered  atomic.Uint64
	delayed    atomic.Uint64
}

// NewLink returns a Link whose fault schedule is driven by a PRNG seeded
// with seed. With no probabilities set it delivers everything cleanly.
func NewLink(seed int64) *Link {
	return &Link{rng: rand.New(rand.NewSource(seed))}
}

// SetDrop makes each frame be discarded with probability p.
func (l *Link) SetDrop(p float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.drop = p
}

// SetDuplicate makes each delivered frame be sent twice with probability p.
func (l *Link) SetDuplicate(p float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dup = p
}

// SetReorder makes each frame be held one slot (delivered after its
// successor) with probability p.
func (l *Link) SetReorder(p float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hold = p
}

// SetDelay makes each frame sleep d before delivery with probability p.
func (l *Link) SetDelay(p float64, d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.delayP, l.delayD = p, d
}

// SetPartitioned black-holes the link (every frame dropped, regardless of
// probabilities) until called again with false. Heartbeat loss and stream
// timeouts, not this call, are how the endpoints find out.
func (l *Link) SetPartitioned(p bool) {
	if l == nil {
		return
	}
	l.partitioned.Store(p)
}

// Partitioned reports whether the link is currently black-holed.
func (l *Link) Partitioned() bool {
	return l != nil && l.partitioned.Load()
}

// Next draws the verdict for one outgoing frame and updates the counters.
// Nil link: clean delivery.
func (l *Link) Next() Verdict {
	if l == nil {
		return Verdict{}
	}
	if l.partitioned.Load() {
		l.dropped.Add(1)
		return Verdict{Drop: true}
	}
	l.mu.Lock()
	var v Verdict
	switch {
	case l.drop > 0 && l.rng.Float64() < l.drop:
		v.Drop = true
	case l.hold > 0 && l.rng.Float64() < l.hold:
		v.Hold = true
	case l.dup > 0 && l.rng.Float64() < l.dup:
		v.Dup = true
	}
	if !v.Drop && l.delayP > 0 && l.rng.Float64() < l.delayP {
		v.Delay = l.delayD
	}
	l.mu.Unlock()

	switch {
	case v.Drop:
		l.dropped.Add(1)
	case v.Hold:
		l.reordered.Add(1)
	case v.Dup:
		l.duplicated.Add(1)
		l.delivered.Add(2)
	default:
		l.delivered.Add(1)
	}
	if v.Delay > 0 {
		l.delayed.Add(1)
	}
	return v
}

// Delivered returns how many frames reached the far end (duplicates count
// twice, held frames count when released).
func (l *Link) Delivered() uint64 {
	if l == nil {
		return 0
	}
	// A held frame is counted at release time by the sender calling
	// Released; see below. Reordered frames that were released show up in
	// delivered via Released.
	return l.delivered.Load()
}

// Released records that a previously held (reordered) frame was finally
// delivered.
func (l *Link) Released() {
	if l == nil {
		return
	}
	l.delivered.Add(1)
}

// Dropped returns how many frames the link discarded (including during
// partitions).
func (l *Link) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped.Load()
}

// Duplicated returns how many frames were delivered twice.
func (l *Link) Duplicated() uint64 {
	if l == nil {
		return 0
	}
	return l.duplicated.Load()
}

// Reordered returns how many frames were held for one-slot reordering.
func (l *Link) Reordered() uint64 {
	if l == nil {
		return 0
	}
	return l.reordered.Load()
}

// Delayed returns how many frames were artificially delayed.
func (l *Link) Delayed() uint64 {
	if l == nil {
		return 0
	}
	return l.delayed.Load()
}

// String summarises the link's delivery counters (chaos-test logging).
func (l *Link) String() string {
	if l == nil {
		return "link(perfect)"
	}
	return fmt.Sprintf("link(delivered=%d dropped=%d dup=%d reordered=%d delayed=%d)",
		l.Delivered(), l.Dropped(), l.Duplicated(), l.Reordered(), l.Delayed())
}
