// Package testutil holds shared test helpers. It must only be imported from
// _test.go files.
package testutil

import (
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB the helpers need (avoids importing testing
// into non-test binaries that link this package).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// NoLeakedGoroutines snapshots the live goroutines and registers a cleanup
// that fails the test if goroutines started during the test are still
// running when it ends. Teardown is asynchronous (worker pools drain,
// producers notice closed channels), so the check polls for up to two
// seconds before declaring a leak, and reports the full stack of every
// leaked goroutine.
//
// Use it first in any test that exercises the pipelined PREDICT path,
// single-flight waits, or query cancellation: those are exactly the places
// where an early error return can strand a goroutine.
func NoLeakedGoroutines(t TB) {
	t.Helper()
	before := goroutineIDs()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			leaked := leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("leaked %d goroutine(s):\n\n%s", len(leaked), strings.Join(leaked, "\n\n"))
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// goroutineStacks returns one stack dump per live goroutine.
func goroutineStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	return strings.Split(strings.TrimSpace(string(buf)), "\n\n")
}

// goroutineID extracts the numeric ID from a "goroutine N [state]:" header.
func goroutineID(stack string) string {
	header, _, _ := strings.Cut(stack, "\n")
	fields := strings.Fields(header)
	if len(fields) >= 2 && fields[0] == "goroutine" {
		return fields[1]
	}
	return ""
}

func goroutineIDs() map[string]bool {
	ids := make(map[string]bool)
	for _, s := range goroutineStacks() {
		if id := goroutineID(s); id != "" {
			ids[id] = true
		}
	}
	return ids
}

// leakedSince returns the stacks of goroutines not alive at snapshot time,
// excluding the runtime's and the test framework's own machinery.
func leakedSince(before map[string]bool) []string {
	var leaked []string
	for _, s := range goroutineStacks() {
		id := goroutineID(s)
		if id == "" || before[id] || benign(s) {
			continue
		}
		leaked = append(leaked, s)
	}
	return leaked
}

// benign reports whether a goroutine belongs to the runtime or the testing
// framework rather than to code under test.
func benign(stack string) bool {
	for _, marker := range []string{
		"testing.tRunner",
		"testing.(*T).Run",
		"testing.runFuzzing",
		"runtime.gc",
		"runtime.bgsweep",
		"runtime.bgscavenge",
		"created by runtime",
		"runtime/pprof",
		"os/signal.signal_recv",
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}
