// Package resources implements the unified resource management of Sec. 3:
// a Governor that divides the machine's cores between the engine's query
// workers and the tensor kernels' internal parallelism (the paper's
// RDBMS-threads vs OpenMP-threads coordination problem), and a grid-search
// Tuner for the hyper-parameter co-optimisation the section calls for —
// picking the thread split and batch size that minimise measured latency.
package resources

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"tensorbase/internal/tensor"
)

// Governor partitions a fixed number of compute tokens (cores) between
// query-level parallelism and kernel-level parallelism. Acquire blocks
// until tokens are available, so concurrent inference queries cannot
// oversubscribe the machine the way independently-configured DB and BLAS
// thread pools do.
type Governor struct {
	total  int
	tokens chan struct{}
}

// NewGovernor returns a governor over n compute tokens (n <= 0 uses
// GOMAXPROCS).
func NewGovernor(n int) *Governor {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	g := &Governor{total: n, tokens: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		g.tokens <- struct{}{}
	}
	return g
}

// Total returns the token count.
func (g *Governor) Total() int { return g.total }

// Acquire blocks until n tokens are held. Acquiring more than Total panics
// (it would deadlock).
func (g *Governor) Acquire(n int) {
	if n > g.total {
		panic(fmt.Sprintf("resources: acquire of %d exceeds %d tokens", n, g.total))
	}
	for i := 0; i < n; i++ {
		<-g.tokens
	}
}

// TryAcquire attempts to take n tokens without blocking.
func (g *Governor) TryAcquire(n int) bool {
	if n > g.total {
		return false
	}
	taken := 0
	for taken < n {
		select {
		case <-g.tokens:
			taken++
		default:
			g.Release(taken)
			return false
		}
	}
	return true
}

// Release returns n tokens.
func (g *Governor) Release(n int) {
	for i := 0; i < n; i++ {
		select {
		case g.tokens <- struct{}{}:
		default:
			panic("resources: release beyond capacity")
		}
	}
}

// Available returns the tokens currently free.
func (g *Governor) Available() int { return len(g.tokens) }

// ApplyKernelCap points the tensor kernels at the governor's split:
// kernels may fan out to at most kernelThreads goroutines each.
func ApplyKernelCap(kernelThreads int) {
	tensor.SetMaxWorkers(kernelThreads)
}

// Config is one point in the tuning grid.
type Config struct {
	// Workers is the engine-side parallelism (e.g. concurrent batches).
	Workers int
	// KernelThreads caps per-kernel parallelism.
	KernelThreads int
	// Batch is the inference micro-batch size.
	Batch int
}

// Grid enumerates the cross product of the candidate values, dropping
// combinations that oversubscribe totalThreads (Workers × KernelThreads
// must not exceed it) — the constraint existing tuners miss per Sec. 3.
func Grid(totalThreads int, workers, kernels, batches []int) []Config {
	var out []Config
	for _, w := range workers {
		for _, k := range kernels {
			if w < 1 || k < 1 || w*k > totalThreads {
				continue
			}
			for _, b := range batches {
				if b < 1 {
					continue
				}
				out = append(out, Config{Workers: w, KernelThreads: k, Batch: b})
			}
		}
	}
	return out
}

// Measurement is one tuning observation.
type Measurement struct {
	Config  Config
	Latency time.Duration
}

// Tune runs the workload under every configuration (applying the kernel
// cap for the duration of each run) and returns the measurements sorted
// fastest first. The workload receives the configuration and returns its
// measured latency; errors abort the search.
func Tune(configs []Config, run func(Config) (time.Duration, error)) ([]Measurement, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("resources: empty configuration grid")
	}
	out := make([]Measurement, 0, len(configs))
	defer tensor.SetMaxWorkers(0)
	for _, cfg := range configs {
		ApplyKernelCap(cfg.KernelThreads)
		lat, err := run(cfg)
		if err != nil {
			return nil, fmt.Errorf("resources: tuning %+v: %w", cfg, err)
		}
		out = append(out, Measurement{Config: cfg, Latency: lat})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Latency < out[j].Latency })
	return out, nil
}

// Best is a convenience wrapper returning only the winning configuration.
func Best(configs []Config, run func(Config) (time.Duration, error)) (Config, error) {
	ms, err := Tune(configs, run)
	if err != nil {
		return Config{}, err
	}
	return ms[0].Config, nil
}
