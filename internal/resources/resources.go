// Package resources implements the unified resource management of Sec. 3:
// a Governor that divides the machine's cores between the engine's query
// workers and the tensor kernels' internal parallelism (the paper's
// RDBMS-threads vs OpenMP-threads coordination problem), and a grid-search
// Tuner for the hyper-parameter co-optimisation the section calls for —
// picking the thread split and batch size that minimise measured latency.
package resources

import (
	"fmt"
	"sort"
	"time"

	"tensorbase/internal/parallel"
	"tensorbase/internal/tensor"
)

// Governor partitions a fixed number of compute tokens (cores) between
// query-level parallelism and kernel-level parallelism. Acquire blocks
// until tokens are available, so concurrent inference queries cannot
// oversubscribe the machine the way independently-configured DB and BLAS
// thread pools do.
//
// Governor is a thin policy layer over a parallel.Budget — the same budget
// type the executor's block scheduler and the tensor kernels draw from.
// Bind installs the governor's budget as the process-wide default, which is
// how all three levels of parallelism (query workers, block workers, kernel
// bands) end up debiting one core account.
type Governor struct {
	budget *parallel.Budget
}

// NewGovernor returns a governor over n compute tokens (n <= 0 uses
// GOMAXPROCS).
func NewGovernor(n int) *Governor {
	return &Governor{budget: parallel.NewBudget(n)}
}

// Budget exposes the underlying compute-token budget.
func (g *Governor) Budget() *parallel.Budget { return g.budget }

// Bind installs the governor's budget as the process-wide default that
// tensor kernels and block schedulers consult, and returns a function that
// restores the previous default (for scoped use in tests and tuning runs).
func (g *Governor) Bind() (restore func()) {
	prev := parallel.SetDefault(g.budget)
	return func() { parallel.SetDefault(prev) }
}

// Total returns the token count.
func (g *Governor) Total() int { return g.budget.Total() }

// Acquire blocks until n tokens are held. Acquiring more than Total panics
// (it would deadlock).
func (g *Governor) Acquire(n int) { g.budget.Acquire(n) }

// TryAcquire attempts to take n tokens without blocking; it takes all n or
// none.
func (g *Governor) TryAcquire(n int) bool { return g.budget.TryAcquire(n) }

// Release returns n tokens. Releasing more than were acquired panics.
func (g *Governor) Release(n int) { g.budget.Release(n) }

// Available returns the tokens currently free.
func (g *Governor) Available() int { return g.budget.Available() }

// ApplyKernelCap points the tensor kernels at the governor's split:
// kernels may fan out to at most kernelThreads goroutines each. The cap is
// an upper bound on top of the shared budget — a kernel still has to win
// tokens from the default budget to actually fan out.
func ApplyKernelCap(kernelThreads int) {
	tensor.SetMaxWorkers(kernelThreads)
}

// Config is one point in the tuning grid.
type Config struct {
	// Workers is the engine-side parallelism (e.g. concurrent batches).
	Workers int
	// KernelThreads caps per-kernel parallelism.
	KernelThreads int
	// Batch is the inference micro-batch size.
	Batch int
}

// Grid enumerates the cross product of the candidate values, dropping
// combinations that oversubscribe totalThreads (Workers × KernelThreads
// must not exceed it) — the constraint existing tuners miss per Sec. 3.
func Grid(totalThreads int, workers, kernels, batches []int) []Config {
	var out []Config
	for _, w := range workers {
		for _, k := range kernels {
			if w < 1 || k < 1 || w*k > totalThreads {
				continue
			}
			for _, b := range batches {
				if b < 1 {
					continue
				}
				out = append(out, Config{Workers: w, KernelThreads: k, Batch: b})
			}
		}
	}
	return out
}

// Measurement is one tuning observation.
type Measurement struct {
	Config  Config
	Latency time.Duration
}

// Tune runs the workload under every configuration (applying the kernel
// cap for the duration of each run) and returns the measurements sorted
// fastest first. The workload receives the configuration and returns its
// measured latency; errors abort the search.
func Tune(configs []Config, run func(Config) (time.Duration, error)) ([]Measurement, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("resources: empty configuration grid")
	}
	out := make([]Measurement, 0, len(configs))
	defer tensor.SetMaxWorkers(0)
	for _, cfg := range configs {
		ApplyKernelCap(cfg.KernelThreads)
		lat, err := run(cfg)
		if err != nil {
			return nil, fmt.Errorf("resources: tuning %+v: %w", cfg, err)
		}
		out = append(out, Measurement{Config: cfg, Latency: lat})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Latency < out[j].Latency })
	return out, nil
}

// Best is a convenience wrapper returning only the winning configuration.
func Best(configs []Config, run func(Config) (time.Duration, error)) (Config, error) {
	ms, err := Tune(configs, run)
	if err != nil {
		return Config{}, err
	}
	return ms[0].Config, nil
}
