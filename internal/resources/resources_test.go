package resources

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGovernorAcquireRelease(t *testing.T) {
	g := NewGovernor(4)
	if g.Total() != 4 || g.Available() != 4 {
		t.Fatalf("total=%d avail=%d", g.Total(), g.Available())
	}
	g.Acquire(3)
	if g.Available() != 1 {
		t.Fatalf("avail = %d", g.Available())
	}
	g.Release(3)
	if g.Available() != 4 {
		t.Fatalf("avail = %d", g.Available())
	}
}

func TestGovernorTryAcquire(t *testing.T) {
	g := NewGovernor(2)
	if !g.TryAcquire(2) {
		t.Fatal("TryAcquire(2) should succeed")
	}
	if g.TryAcquire(1) {
		t.Fatal("TryAcquire beyond capacity should fail")
	}
	g.Release(2)
	if g.TryAcquire(3) {
		t.Fatal("TryAcquire above total should fail")
	}
	if g.Available() != 2 {
		t.Fatal("failed TryAcquire must not leak tokens")
	}
}

func TestGovernorOverAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-acquire should panic")
		}
	}()
	NewGovernor(1).Acquire(2)
}

func TestGovernorOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-release should panic")
		}
	}()
	NewGovernor(1).Release(1)
}

func TestGovernorBoundsConcurrency(t *testing.T) {
	g := NewGovernor(3)
	var inFlight, peak atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Acquire(1)
			defer g.Release(1)
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 3 {
		t.Fatalf("peak concurrency %d exceeds 3 tokens", got)
	}
	if g.Available() != 3 {
		t.Fatalf("tokens leaked: %d", g.Available())
	}
}

func TestGridRespectsThreadBudget(t *testing.T) {
	cfgs := Grid(8, []int{1, 2, 4, 8}, []int{1, 2, 4, 8}, []int{64})
	if len(cfgs) == 0 {
		t.Fatal("empty grid")
	}
	for _, c := range cfgs {
		if c.Workers*c.KernelThreads > 8 {
			t.Fatalf("oversubscribed config %+v", c)
		}
	}
	// 8 cores: (1,1..8)=4, (2,1..4)=3, (4,1..2)=2, (8,1)=1 → 10 configs.
	if len(cfgs) != 10 {
		t.Fatalf("grid size %d, want 10", len(cfgs))
	}
	if len(Grid(8, []int{0}, []int{1}, []int{0})) != 0 {
		t.Fatal("invalid values must be dropped")
	}
}

func TestTuneOrdersByLatencyAndPicksBest(t *testing.T) {
	cfgs := Grid(4, []int{1, 2, 4}, []int{1}, []int{32, 128})
	// Synthetic cost: workers=2, batch=128 is fastest.
	cost := func(c Config) (time.Duration, error) {
		d := time.Duration(100) * time.Microsecond
		if c.Workers != 2 {
			d += 50 * time.Microsecond
		}
		if c.Batch != 128 {
			d += 30 * time.Microsecond
		}
		return d, nil
	}
	ms, err := Tune(cfgs, cost)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Latency < ms[i-1].Latency {
			t.Fatal("measurements not sorted")
		}
	}
	best, err := Best(cfgs, cost)
	if err != nil {
		t.Fatal(err)
	}
	if best.Workers != 2 || best.Batch != 128 {
		t.Fatalf("best = %+v", best)
	}
}

func TestTuneEmptyGrid(t *testing.T) {
	if _, err := Tune(nil, nil); err == nil {
		t.Fatal("empty grid must error")
	}
}
