package sql

import (
	"fmt"
	"strconv"
	"strings"

	"tensorbase/internal/table"
)

// Render turns a parsed statement back into SQL text. The shard planner
// uses it to push rewritten subplans (per-shard INSERT row subsets,
// partial-aggregate SELECTs) to shard nodes over the wire, so rendering
// must round-trip through Parse without changing meaning — in particular
// float literals render with full precision.
func Render(st Statement) string {
	var sb strings.Builder
	switch s := st.(type) {
	case *CreateTable:
		sb.WriteString("CREATE TABLE ")
		sb.WriteString(s.Name)
		sb.WriteString(" (")
		for i, c := range s.Cols {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.Name)
			sb.WriteByte(' ')
			sb.WriteString(typeName(c.Type))
		}
		sb.WriteByte(')')
	case *DropTable:
		sb.WriteString("DROP TABLE ")
		sb.WriteString(s.Name)
	case *Insert:
		sb.WriteString("INSERT INTO ")
		sb.WriteString(s.Table)
		sb.WriteString(" VALUES ")
		for i, row := range s.Rows {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteByte('(')
			for j, lit := range row {
				if j > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(RenderLiteral(lit))
			}
			sb.WriteByte(')')
		}
	case *Select:
		renderSelect(&sb, s)
	default:
		sb.WriteString(fmt.Sprintf("/* unrenderable %T */", st))
	}
	return sb.String()
}

func renderSelect(sb *strings.Builder, s *Select) {
	for i, cte := range s.With {
		if i == 0 {
			sb.WriteString("WITH ")
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(cte.Name)
		sb.WriteString(" AS (")
		renderSelect(sb, cte.Query)
		sb.WriteString(") ")
	}
	sb.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch {
		case it.Star:
			sb.WriteByte('*')
		case it.Predict != nil:
			sb.WriteString("PREDICT(")
			sb.WriteString(it.Predict.Model)
			sb.WriteString(", ")
			sb.WriteString(it.Predict.FeatureCol)
			sb.WriteByte(')')
			if it.Predict.Quantized {
				sb.WriteString(" OPTIONS (quantized)")
			}
		case it.Agg != nil:
			sb.WriteString(it.Agg.Fn)
			sb.WriteByte('(')
			if it.Agg.Col == "" {
				sb.WriteByte('*')
			} else {
				sb.WriteString(it.Agg.Col)
			}
			sb.WriteByte(')')
		default:
			sb.WriteString(it.Col)
		}
	}
	sb.WriteString(" FROM ")
	sb.WriteString(s.From)
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(s.Where.Col)
		sb.WriteByte(' ')
		sb.WriteString(s.Where.Op)
		sb.WriteByte(' ')
		sb.WriteString(RenderLiteral(s.Where.Lit))
	}
	if s.GroupBy != "" {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(s.GroupBy)
	}
	if s.OrderBy != "" {
		sb.WriteString(" ORDER BY ")
		sb.WriteString(s.OrderBy)
		if s.OrderDesc {
			sb.WriteString(" DESC")
		}
	}
	if s.Limit >= 0 {
		sb.WriteString(" LIMIT ")
		sb.WriteString(strconv.Itoa(s.Limit))
	}
}

// RenderLiteral renders a literal so it parses back to the same value.
func RenderLiteral(l Literal) string {
	v := l.Value
	switch v.Type {
	case table.Int64:
		return strconv.FormatInt(v.Int, 10)
	case table.Float64:
		return floatText(v.Float, 64)
	case table.Text:
		return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
	case table.FloatVec:
		var sb strings.Builder
		sb.WriteByte('[')
		for i, f := range v.Vec {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(strconv.FormatFloat(float64(f), 'g', -1, 32))
		}
		sb.WriteByte(']')
		return sb.String()
	default:
		return "NULL"
	}
}

// floatText formats f with round-trip precision, forcing a float-shaped
// token (the parser types bare integers as INT).
func floatText(f float64, bits int) string {
	s := strconv.FormatFloat(f, 'g', -1, bits)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

func typeName(t table.ColType) string {
	switch t {
	case table.Int64:
		return "INT"
	case table.Float64:
		return "DOUBLE"
	case table.Text:
		return "TEXT"
	case table.FloatVec:
		return "VECTOR"
	default:
		return "UNKNOWN"
	}
}
