package sql

// Statement analysis used by the read router and the shard planner: which
// statements are reads, whether a SELECT can be pinned to a single shard,
// and what shape of merge its scatter needs.

// ReadOnly reports whether the parsed statement only reads. This — not a
// text-prefix check — is what routing must classify by: `WITH ... SELECT`,
// `(SELECT ...)`, and comment-prefixed reads are all reads.
func ReadOnly(st Statement) bool {
	_, ok := st.(*Select)
	return ok
}

// KeyPin returns the literal the WHERE clause pins the shard key column to
// with `=`, if any. A pinned SELECT touches exactly one shard. CTE reads
// are never pinned here: the outer FROM names the CTE, not a sharded table.
func (s *Select) KeyPin(key string) (Literal, bool) {
	if len(s.With) > 0 || s.Where == nil || s.Where.Op != "=" || s.Where.Col != key {
		return Literal{}, false
	}
	return s.Where.Lit, true
}

// HasAggregate reports whether any projection item is an aggregate.
func (s *Select) HasAggregate() bool {
	for _, it := range s.Items {
		if it.Agg != nil {
			return true
		}
	}
	return false
}

// HasPredict reports whether any projection item is a PREDICT call.
func (s *Select) HasPredict() bool {
	for _, it := range s.Items {
		if it.Predict != nil {
			return true
		}
	}
	return false
}
