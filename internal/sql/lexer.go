// Package sql implements the SQL subset the engine speaks: CREATE TABLE,
// INSERT, and SELECT with filtering, LIMIT, and the PREDICT(model, column)
// inference function that nests model inference inside a query — the query
// surface the paper's applications (fraud scoring, recommendation) use.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexer token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // single punctuation: ( ) , ; [ ] *
	tokOp    // = != < <= > >=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer splits a statement into tokens. Keywords are case-insensitive
// identifiers; callers compare with strings.EqualFold.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("sql: position %d: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for {
		for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
			l.pos++
		}
		// Comments: `-- ...\n` and `/* ... */`. A `--` fused to an
		// identifier stays part of the identifier ('-' is an ident
		// character for model names), so comments need a token boundary
		// before them — which the whitespace skip above established.
		if l.pos+1 < len(l.src) && l.src[l.pos] == '-' && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if l.pos+1 < len(l.src) && l.src[l.pos] == '/' && l.src[l.pos+1] == '*' {
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return token{}, l.errf(l.pos, "unterminated block comment")
			}
			l.pos += 2 + end + 2
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) {
			if l.src[l.pos] == '\'' {
				// '' escapes a quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: sb.String(), pos: start}, nil
			}
			sb.WriteByte(l.src[l.pos])
			l.pos++
		}
		return token{}, l.errf(start, "unterminated string literal")

	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil

	case isDigit(c) || (c == '-' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		l.pos++
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.' ||
			l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
			((l.src[l.pos] == '+' || l.src[l.pos] == '-') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil

	case c == '(' || c == ')' || c == ',' || c == ';' || c == '[' || c == ']' || c == '*':
		l.pos++
		return token{kind: tokPunct, text: string(c), pos: start}, nil

	case c == '=':
		l.pos++
		return token{kind: tokOp, text: "=", pos: start}, nil

	case c == '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokOp, text: "!=", pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected '!'")

	case c == '<' || c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tokOp, text: l.src[start:l.pos], pos: start}, nil

	default:
		return token{}, l.errf(start, "unexpected character %q", c)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) || c == '-' }

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// lexAll tokenises the whole input.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
