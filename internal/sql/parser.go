package sql

import (
	"fmt"
	"strconv"
	"strings"

	"tensorbase/internal/table"
)

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// CreateTable is `CREATE TABLE name (col TYPE, ...)`.
type CreateTable struct {
	Name string
	Cols []table.Column
}

func (*CreateTable) stmt() {}

// Literal is a typed constant: number, string, or vector.
type Literal struct {
	Value table.Value
}

// Insert is `INSERT INTO name VALUES (lit, ...), ...`.
type Insert struct {
	Table string
	Rows  [][]Literal
}

func (*Insert) stmt() {}

// PredictExpr is `PREDICT(model, featureColumn) [OPTIONS (quantized)]`.
type PredictExpr struct {
	Model      string
	FeatureCol string
	// Quantized requests the model's int8-resident twin: weights stay
	// packed int8 and the forward pass runs the quantized GEMM.
	Quantized bool
}

// AggExpr is an aggregate call: COUNT(*), COUNT(col), SUM(col), AVG(col),
// MIN(col), or MAX(col).
type AggExpr struct {
	Fn  string // upper-cased: COUNT, SUM, AVG, MIN, MAX
	Col string // empty for COUNT(*)
}

// OutName is the aggregate's output column name: `count` for COUNT,
// otherwise `<fn>_<col>` (e.g. `sum_amount`).
func (a *AggExpr) OutName() string {
	if a.Fn == "COUNT" {
		return "count"
	}
	return strings.ToLower(a.Fn) + "_" + a.Col
}

// SelectItem is one projection item: `*`, a column, an aggregate, or
// PREDICT(...).
type SelectItem struct {
	Star    bool
	Col     string
	Predict *PredictExpr
	Agg     *AggExpr
}

// Condition is a simple comparison `col op literal`.
type Condition struct {
	Col string
	Op  string // = != < <= > >=
	Lit Literal
}

// CTE is one `name AS (SELECT ...)` binding in a WITH clause. The body may
// not itself carry a WITH clause (one level of nesting).
type CTE struct {
	Name  string
	Query *Select
}

// Select is `[WITH name AS (SELECT ...), ...] SELECT items FROM table
// [WHERE cond] [GROUP BY col] [ORDER BY col [DESC]] [LIMIT n]`.
type Select struct {
	With      []CTE
	Items     []SelectItem
	From      string
	Where     *Condition
	GroupBy   string // empty when absent
	OrderBy   string // empty when absent
	OrderDesc bool
	Limit     int // -1 when absent
}

func (*Select) stmt() {}

// DropTable is `DROP TABLE name`.
type DropTable struct {
	Name string
}

func (*DropTable) stmt() {}

// Parse parses one SQL statement (a trailing ';' is allowed).
func Parse(src string) (Statement, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tokPunct, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("unexpected %q after statement", p.cur().text)
	}
	return st, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: position %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

// at reports whether the current token matches kind (and text, if given,
// case-insensitively).
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	if t.kind != kind {
		return false
	}
	return text == "" || strings.EqualFold(t.text, text)
}

// accept consumes the current token if it matches.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

// expect consumes a matching token or errors.
func (p *parser) expect(kind tokenKind, text string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return token{}, p.errf("expected %q, found %q", want, t.text)
	}
	p.pos++
	return t, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.at(tokIdent, "CREATE"):
		return p.createTable()
	case p.at(tokIdent, "INSERT"):
		return p.insert()
	case p.at(tokIdent, "SELECT"):
		return p.selectStmt()
	case p.at(tokIdent, "WITH"):
		return p.withSelect()
	case p.at(tokPunct, "("):
		// A parenthesized statement: `(SELECT ...)`. Only reads make
		// sense wrapped — clients emit this form for subquery-shaped
		// tooling output.
		p.pos++
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		if _, ok := st.(*Select); !ok {
			return nil, p.errf("only SELECT may be parenthesized")
		}
		return st, nil
	case p.at(tokIdent, "DROP"):
		return p.dropTable()
	default:
		return nil, p.errf("expected CREATE, DROP, INSERT, SELECT or WITH, found %q", p.cur().text)
	}
}

// withSelect parses `WITH name AS (SELECT ...) [, ...] SELECT ...`.
func (p *parser) withSelect() (Statement, error) {
	p.pos++ // WITH
	var ctes []CTE
	for {
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokIdent, "AS"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		if !p.at(tokIdent, "SELECT") {
			return nil, p.errf("CTE body must be a SELECT, found %q", p.cur().text)
		}
		body, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		ctes = append(ctes, CTE{Name: name.text, Query: body.(*Select)})
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if !p.at(tokIdent, "SELECT") {
		return nil, p.errf("expected SELECT after WITH clause, found %q", p.cur().text)
	}
	st, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	sel := st.(*Select)
	sel.With = ctes
	return sel, nil
}

func (p *parser) createTable() (Statement, error) {
	p.pos++ // CREATE
	if _, err := p.expect(tokIdent, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var cols []table.Column
	for {
		cn, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		tn, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		ct, err := colType(tn.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		cols = append(cols, table.Column{Name: cn.text, Type: ct})
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return &CreateTable{Name: name.text, Cols: cols}, nil
}

func colType(name string) (table.ColType, error) {
	switch strings.ToUpper(name) {
	case "INT", "BIGINT", "INTEGER":
		return table.Int64, nil
	case "DOUBLE", "FLOAT", "REAL":
		return table.Float64, nil
	case "TEXT", "VARCHAR", "STRING":
		return table.Text, nil
	case "VECTOR":
		return table.FloatVec, nil
	default:
		return 0, fmt.Errorf("unknown column type %q", name)
	}
}

func (p *parser) insert() (Statement, error) {
	p.pos++ // INSERT
	if _, err := p.expect(tokIdent, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "VALUES"); err != nil {
		return nil, err
	}
	var rows [][]Literal
	for {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		var row []Literal
		for {
			lit, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, lit)
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	return &Insert{Table: name.text, Rows: rows}, nil
}

// literal parses a number, string, or vector `[f, f, ...]`.
func (p *parser) literal() (Literal, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Literal{}, p.errf("bad number %q", t.text)
			}
			return Literal{Value: table.FloatVal(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Literal{}, p.errf("bad integer %q", t.text)
		}
		return Literal{Value: table.IntVal(i)}, nil

	case t.kind == tokString:
		p.pos++
		return Literal{Value: table.TextVal(t.text)}, nil

	case t.kind == tokPunct && t.text == "[":
		p.pos++
		var vec []float32
		if !p.at(tokPunct, "]") {
			for {
				n, err := p.expect(tokNumber, "")
				if err != nil {
					return Literal{}, err
				}
				f, err := strconv.ParseFloat(n.text, 32)
				if err != nil {
					return Literal{}, p.errf("bad vector element %q", n.text)
				}
				vec = append(vec, float32(f))
				if p.accept(tokPunct, ",") {
					continue
				}
				break
			}
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return Literal{}, err
		}
		return Literal{Value: table.VecVal(vec)}, nil

	default:
		return Literal{}, p.errf("expected a literal, found %q", t.text)
	}
}

func (p *parser) selectStmt() (Statement, error) {
	p.pos++ // SELECT
	sel := &Select{Limit: -1}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokIdent, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	sel.From = from.text
	if p.accept(tokIdent, "WHERE") {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		op, err := p.expect(tokOp, "")
		if err != nil {
			return nil, err
		}
		lit, err := p.literal()
		if err != nil {
			return nil, err
		}
		sel.Where = &Condition{Col: col.text, Op: op.text, Lit: lit}
	}
	if p.accept(tokIdent, "GROUP") {
		if _, err := p.expect(tokIdent, "BY"); err != nil {
			return nil, err
		}
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		sel.GroupBy = col.text
	}
	if p.accept(tokIdent, "ORDER") {
		if _, err := p.expect(tokIdent, "BY"); err != nil {
			return nil, err
		}
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		sel.OrderBy = col.text
		if p.accept(tokIdent, "DESC") {
			sel.OrderDesc = true
		} else {
			p.accept(tokIdent, "ASC")
		}
	}
	if p.accept(tokIdent, "LIMIT") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		limit, err := strconv.Atoi(n.text)
		if err != nil || limit < 0 {
			return nil, p.errf("bad LIMIT %q", n.text)
		}
		sel.Limit = limit
	}
	return sel, nil
}

func (p *parser) dropTable() (Statement, error) {
	p.pos++ // DROP
	if _, err := p.expect(tokIdent, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name.text}, nil
}

var aggFns = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func (p *parser) selectItem() (SelectItem, error) {
	if p.accept(tokPunct, "*") {
		return SelectItem{Star: true}, nil
	}
	id, err := p.expect(tokIdent, "")
	if err != nil {
		return SelectItem{}, err
	}
	if fn := strings.ToUpper(id.text); aggFns[fn] && p.at(tokPunct, "(") {
		p.pos++
		if fn == "COUNT" && p.accept(tokPunct, "*") {
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return SelectItem{}, err
			}
			return SelectItem{Agg: &AggExpr{Fn: fn}}, nil
		}
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Agg: &AggExpr{Fn: fn, Col: col.text}}, nil
	}
	if strings.EqualFold(id.text, "PREDICT") && p.at(tokPunct, "(") {
		p.pos++
		model, err := p.expect(tokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		if _, err := p.expect(tokPunct, ","); err != nil {
			return SelectItem{}, err
		}
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return SelectItem{}, err
		}
		pe := &PredictExpr{Model: model.text, FeatureCol: col.text}
		if p.accept(tokIdent, "OPTIONS") {
			if _, err := p.expect(tokPunct, "("); err != nil {
				return SelectItem{}, err
			}
			for {
				opt, err := p.expect(tokIdent, "")
				if err != nil {
					return SelectItem{}, err
				}
				if !strings.EqualFold(opt.text, "quantized") {
					return SelectItem{}, p.errf("unknown PREDICT option %q", opt.text)
				}
				pe.Quantized = true
				if !p.accept(tokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return SelectItem{}, err
			}
		}
		return SelectItem{Predict: pe}, nil
	}
	return SelectItem{Col: id.text}, nil
}
