package sql

import (
	"strings"
	"testing"

	"tensorbase/internal/table"
)

func TestLexerComments(t *testing.T) {
	sel := parseSelect(t, "-- leading line comment\nSELECT a FROM t -- trailing\n/* block\nspans lines */ LIMIT 2")
	if sel.From != "t" || sel.Limit != 2 {
		t.Fatalf("%+v", sel)
	}
	if _, err := Parse("SELECT a FROM t /* unterminated"); err == nil {
		t.Fatal("unterminated block comment must fail")
	}
	// '-' stays an identifier character: model names like Fraud-FC-32 must
	// not be eaten as comments.
	sel = parseSelect(t, "SELECT PREDICT(Fraud-FC-32, f) FROM t")
	if sel.Items[0].Predict.Model != "Fraud-FC-32" {
		t.Fatalf("%+v", sel.Items[0].Predict)
	}
}

func TestParseParenthesizedSelect(t *testing.T) {
	sel := parseSelect(t, "(SELECT a FROM t WHERE a = 1)")
	if sel.From != "t" || sel.Where == nil {
		t.Fatalf("%+v", sel)
	}
	// Nested parens work too.
	sel = parseSelect(t, "((SELECT a FROM t))")
	if sel.From != "t" {
		t.Fatalf("%+v", sel)
	}
	if _, err := Parse("(DROP TABLE t)"); err == nil {
		t.Fatal("parenthesized non-SELECT must fail")
	}
	if _, err := Parse("(SELECT a FROM t"); err == nil {
		t.Fatal("unbalanced paren must fail")
	}
}

func TestParseCTE(t *testing.T) {
	sel := parseSelect(t, "WITH big AS (SELECT a FROM t WHERE a > 5) SELECT a FROM big LIMIT 3")
	if len(sel.With) != 1 || sel.With[0].Name != "big" {
		t.Fatalf("%+v", sel.With)
	}
	if sel.With[0].Query.Where == nil || sel.From != "big" || sel.Limit != 3 {
		t.Fatalf("%+v", sel)
	}
	sel = parseSelect(t, "WITH x AS (SELECT a FROM t), y AS (SELECT b FROM u) SELECT a FROM x")
	if len(sel.With) != 2 || sel.With[1].Name != "y" {
		t.Fatalf("%+v", sel.With)
	}
	for _, bad := range []string{
		"WITH x AS (DROP TABLE t) SELECT a FROM x",
		"WITH x AS (SELECT a FROM t) DROP TABLE x",
		"WITH x AS SELECT a FROM t SELECT a FROM x",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseAggregates(t *testing.T) {
	sel := parseSelect(t, "SELECT who, COUNT(*), SUM(amount), AVG(amount), MIN(amount), MAX(amount) FROM txns GROUP BY who")
	if sel.GroupBy != "who" || len(sel.Items) != 6 {
		t.Fatalf("%+v", sel)
	}
	if sel.Items[0].Agg != nil || sel.Items[1].Agg == nil {
		t.Fatalf("%+v", sel.Items)
	}
	if sel.Items[1].Agg.Fn != "COUNT" || sel.Items[1].Agg.Col != "" {
		t.Fatalf("%+v", sel.Items[1].Agg)
	}
	if sel.Items[2].Agg.Fn != "SUM" || sel.Items[2].Agg.Col != "amount" {
		t.Fatalf("%+v", sel.Items[2].Agg)
	}
	if got := sel.Items[2].Agg.OutName(); got != "sum_amount" {
		t.Fatalf("OutName = %q", got)
	}
	if got := sel.Items[1].Agg.OutName(); got != "count" {
		t.Fatalf("OutName = %q", got)
	}
	// COUNT(col) parses; no GROUP BY is a single global group.
	sel = parseSelect(t, "select count(id) from t")
	if sel.Items[0].Agg == nil || sel.Items[0].Agg.Col != "id" || sel.GroupBy != "" {
		t.Fatalf("%+v", sel)
	}
	// A column merely named like an aggregate stays a column reference.
	sel = parseSelect(t, "SELECT count FROM t")
	if sel.Items[0].Agg != nil || sel.Items[0].Col != "count" {
		t.Fatalf("%+v", sel.Items[0])
	}
	if _, err := Parse("SELECT SUM(*) FROM t"); err == nil {
		t.Fatal("SUM(*) must fail")
	}
	if _, err := Parse("SELECT a FROM t GROUP who"); err == nil {
		t.Fatal("GROUP without BY must fail")
	}
}

func TestReadOnly(t *testing.T) {
	reads := []string{
		"SELECT a FROM t",
		"(SELECT a FROM t)",
		"WITH x AS (SELECT a FROM t) SELECT a FROM x",
		"-- note\nSELECT a FROM t",
	}
	for _, src := range reads {
		st, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if !ReadOnly(st) {
			t.Fatalf("ReadOnly(%q) = false", src)
		}
	}
	writes := []string{
		"INSERT INTO t VALUES (1)",
		"CREATE TABLE t (a INT)",
		"DROP TABLE t",
	}
	for _, src := range writes {
		st, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if ReadOnly(st) {
			t.Fatalf("ReadOnly(%q) = true", src)
		}
	}
}

func TestKeyPin(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM t WHERE id = 7")
	lit, ok := sel.KeyPin("id")
	if !ok || lit.Value.Int != 7 {
		t.Fatalf("pin = %+v, %v", lit, ok)
	}
	for _, src := range []string{
		"SELECT * FROM t WHERE id > 7",                               // not equality
		"SELECT * FROM t WHERE other = 7",                            // not the key
		"SELECT * FROM t",                                            // no WHERE
		"WITH x AS (SELECT id FROM t WHERE id = 7) SELECT id FROM x", // CTE outer never pins
	} {
		if _, ok := parseSelect(t, src).KeyPin("id"); ok {
			t.Fatalf("KeyPin(%q) pinned", src)
		}
	}
}

func TestRenderRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT a, b FROM t WHERE a >= 1.5 ORDER BY b DESC LIMIT 10",
		"SELECT who, COUNT(*), SUM(amount) FROM txns GROUP BY who",
		"SELECT id, PREDICT(Fraud-FC-32, features) OPTIONS (quantized) FROM txns",
		"WITH big AS (SELECT a FROM t WHERE a > 5) SELECT a FROM big LIMIT 3",
		"INSERT INTO t VALUES (1, -2.5, 'it''s', [1.5, -3]), (2, 1e-12, '', [])",
		"CREATE TABLE t (a INT, b DOUBLE, c TEXT, d VECTOR)",
		"DROP TABLE t",
	}
	for _, src := range srcs {
		st1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		text := Render(st1)
		st2, err := Parse(text)
		if err != nil {
			t.Fatalf("Render(%q) = %q does not re-parse: %v", src, text, err)
		}
		if Render(st2) != text {
			t.Fatalf("render not fixed-point: %q -> %q vs %q", src, text, Render(st2))
		}
	}
	// Float literals keep full precision and stay float-typed through a
	// render/parse cycle.
	st, _ := Parse("INSERT INTO t VALUES (2.0, 0.1)")
	st2, err := Parse(Render(st))
	if err != nil {
		t.Fatal(err)
	}
	row := st2.(*Insert).Rows[0]
	if row[0].Value.Type != table.Float64 || row[0].Value.Float != 2.0 {
		t.Fatalf("2.0 round-tripped to %+v", row[0].Value)
	}
	if row[1].Value.Float != 0.1 {
		t.Fatalf("0.1 round-tripped to %+v", row[1].Value)
	}
	if !strings.Contains(Render(st), "2.0") {
		t.Fatalf("render = %q", Render(st))
	}
}
