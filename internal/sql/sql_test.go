package sql

import (
	"testing"

	"tensorbase/internal/table"
)

func parseSelect(t *testing.T, src string) *Select {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	sel, ok := st.(*Select)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *Select", src, st)
	}
	return sel
}

func TestParseCreateTable(t *testing.T) {
	st, err := Parse("CREATE TABLE txns (id INT, amount DOUBLE, who TEXT, features VECTOR);")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTable)
	if ct.Name != "txns" || len(ct.Cols) != 4 {
		t.Fatalf("%+v", ct)
	}
	want := []table.ColType{table.Int64, table.Float64, table.Text, table.FloatVec}
	for i, w := range want {
		if ct.Cols[i].Type != w {
			t.Fatalf("col %d type %v, want %v", i, ct.Cols[i].Type, w)
		}
	}
}

func TestParseCreateTableTypeAliases(t *testing.T) {
	st, err := Parse("create table x (a integer, b float, c varchar)")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTable)
	if ct.Cols[0].Type != table.Int64 || ct.Cols[1].Type != table.Float64 || ct.Cols[2].Type != table.Text {
		t.Fatalf("%+v", ct.Cols)
	}
}

func TestParseCreateTableErrors(t *testing.T) {
	for _, src := range []string{
		"CREATE TABLE t",
		"CREATE TABLE t (a BLOB)",
		"CREATE TABLE t (a INT",
		"CREATE t (a INT)",
	} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) should fail", src)
		}
	}
}

func TestParseInsert(t *testing.T) {
	st, err := Parse("INSERT INTO txns VALUES (1, 9.5, 'alice', [1.5, 2, 3]), (2, -1.25, 'it''s bob', [])")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*Insert)
	if ins.Table != "txns" || len(ins.Rows) != 2 {
		t.Fatalf("%+v", ins)
	}
	r0 := ins.Rows[0]
	if r0[0].Value.Int != 1 || r0[1].Value.Float != 9.5 || r0[0].Value.Type != table.Int64 {
		t.Fatalf("row0 = %+v", r0)
	}
	if r0[2].Value.Str != "alice" {
		t.Fatalf("string = %q", r0[2].Value.Str)
	}
	vec := r0[3].Value.Vec
	if len(vec) != 3 || vec[0] != 1.5 || vec[2] != 3 {
		t.Fatalf("vector = %v", vec)
	}
	if ins.Rows[1][2].Value.Str != "it's bob" {
		t.Fatalf("escaped string = %q", ins.Rows[1][2].Value.Str)
	}
	if len(ins.Rows[1][3].Value.Vec) != 0 {
		t.Fatal("empty vector should parse")
	}
	if ins.Rows[1][1].Value.Float != -1.25 {
		t.Fatalf("negative float = %v", ins.Rows[1][1].Value.Float)
	}
}

func TestParseSelectBasics(t *testing.T) {
	sel := parseSelect(t, "SELECT id, amount FROM txns WHERE amount > 100 LIMIT 10")
	if len(sel.Items) != 2 || sel.Items[0].Col != "id" {
		t.Fatalf("items = %+v", sel.Items)
	}
	if sel.From != "txns" {
		t.Fatalf("from = %q", sel.From)
	}
	if sel.Where == nil || sel.Where.Op != ">" || sel.Where.Lit.Value.Int != 100 {
		t.Fatalf("where = %+v", sel.Where)
	}
	if sel.Limit != 10 {
		t.Fatalf("limit = %d", sel.Limit)
	}
}

func TestParseSelectStar(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM t")
	if len(sel.Items) != 1 || !sel.Items[0].Star {
		t.Fatalf("items = %+v", sel.Items)
	}
	if sel.Where != nil || sel.Limit != -1 {
		t.Fatalf("%+v", sel)
	}
}

func TestParseSelectPredict(t *testing.T) {
	sel := parseSelect(t, "SELECT id, PREDICT(Fraud-FC-256, features) FROM txns WHERE amount >= 10.5")
	if sel.Items[1].Predict == nil {
		t.Fatalf("items = %+v", sel.Items)
	}
	p := sel.Items[1].Predict
	if p.Model != "Fraud-FC-256" || p.FeatureCol != "features" {
		t.Fatalf("predict = %+v", p)
	}
	if sel.Where.Lit.Value.Type != table.Float64 || sel.Where.Lit.Value.Float != 10.5 {
		t.Fatalf("where literal = %+v", sel.Where.Lit)
	}
}

func TestParseSelectPredictOptions(t *testing.T) {
	sel := parseSelect(t, "SELECT id, PREDICT(Fraud-FC-256, features) OPTIONS (quantized) FROM txns")
	p := sel.Items[1].Predict
	if p == nil || !p.Quantized {
		t.Fatalf("predict = %+v", p)
	}
	if sel.From != "txns" {
		t.Fatalf("from = %q", sel.From)
	}
	// Without the clause the flag stays off; case-insensitive when present.
	if parseSelect(t, "SELECT PREDICT(m, f) FROM t").Items[0].Predict.Quantized {
		t.Fatal("Quantized must default to false")
	}
	if !parseSelect(t, "SELECT PREDICT(m, f) options (QUANTIZED) FROM t").Items[0].Predict.Quantized {
		t.Fatal("OPTIONS must parse case-insensitively")
	}
	if _, err := Parse("SELECT PREDICT(m, f) OPTIONS (turbo) FROM t"); err == nil {
		t.Fatal("unknown option must be rejected")
	}
	if _, err := Parse("SELECT PREDICT(m, f) OPTIONS () FROM t"); err == nil {
		t.Fatal("empty OPTIONS must be rejected")
	}
}

func TestParseSelectCaseInsensitiveKeywords(t *testing.T) {
	sel := parseSelect(t, "select id from t where id != 3 limit 1")
	if sel.Where.Op != "!=" {
		t.Fatalf("op = %q", sel.Where.Op)
	}
}

func TestParseOperators(t *testing.T) {
	for _, op := range []string{"=", "!=", "<", "<=", ">", ">="} {
		sel := parseSelect(t, "SELECT a FROM t WHERE a "+op+" 1")
		if sel.Where.Op != op {
			t.Fatalf("op = %q, want %q", sel.Where.Op, op)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"TRUNCATE TABLE t",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a ~ 1",
		"SELECT a FROM t LIMIT x",
		"SELECT PREDICT(m) FROM t",
		"SELECT PREDICT(m, c FROM t",
		"INSERT INTO t VALUES (1", // unclosed
		"INSERT INTO t VALUES ( 'unterminated )",
		"SELECT a FROM t extra",
	} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) should fail", src)
		}
	}
}

func TestLexerStrings(t *testing.T) {
	toks, err := lexAll("'a''b' 'c'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "a'b" || toks[1].text != "c" {
		t.Fatalf("tokens = %+v", toks)
	}
}

func TestLexerRejectsGarbage(t *testing.T) {
	if _, err := lexAll("SELECT @ FROM t"); err == nil {
		t.Fatal("garbage character must fail")
	}
}

func TestParseScientificNumbers(t *testing.T) {
	st, err := Parse("INSERT INTO t VALUES (1e3, 2.5E-2)")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*Insert)
	if ins.Rows[0][0].Value.Float != 1000 {
		t.Fatalf("1e3 = %v", ins.Rows[0][0].Value)
	}
	if ins.Rows[0][1].Value.Float != 0.025 {
		t.Fatalf("2.5E-2 = %v", ins.Rows[0][1].Value)
	}
}

func TestParseOrderBy(t *testing.T) {
	sel := parseSelect(t, "SELECT a FROM t ORDER BY a DESC LIMIT 3")
	if sel.OrderBy != "a" || !sel.OrderDesc || sel.Limit != 3 {
		t.Fatalf("%+v", sel)
	}
	sel = parseSelect(t, "SELECT a FROM t ORDER BY a ASC")
	if sel.OrderBy != "a" || sel.OrderDesc {
		t.Fatalf("%+v", sel)
	}
	if _, err := Parse("SELECT a FROM t ORDER a"); err == nil {
		t.Fatal("ORDER without BY must fail")
	}
}

func TestParseDropTable(t *testing.T) {
	st, err := Parse("DROP TABLE txns")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*DropTable).Name != "txns" {
		t.Fatalf("%+v", st)
	}
	if _, err := Parse("DROP txns"); err == nil {
		t.Fatal("DROP without TABLE must fail")
	}
}
