package blockstore

import (
	"math/rand"
	"sync"
	"testing"
)

func randTensor(seed int64, n int) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		out[i] = rng.Float32()
	}
	return out
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	data := randTensor(1, 1000)
	back, err := Decode(Encode(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if data[i] != back[i] {
			t.Fatalf("elem %d: %v != %v", i, back[i], data[i])
		}
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := Decode(make([]byte, 7)); err == nil {
		t.Fatal("misaligned payload accepted")
	}
	if _, err := Decode(make([]byte, BlockBytes+4)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestInternDedupAndAssemble(t *testing.T) {
	st := New()
	data := randTensor(2, BlockElems*2+100) // three blocks, last short
	ref, fresh, err := st.Intern(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Blocks) != 3 || len(fresh) != 3 {
		t.Fatalf("want 3 blocks all fresh, got %d/%d", len(ref.Blocks), len(fresh))
	}
	ref2, fresh2, err := st.Intern(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh2) != 0 {
		t.Fatalf("re-intern added %d blocks", len(fresh2))
	}
	if st.Stats().DedupHits != 3 {
		t.Fatalf("want 3 dedup hits, got %d", st.Stats().DedupHits)
	}
	got, err := st.Assemble(ref)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("assembled elem %d differs", i)
		}
	}
	// The identical ref assembles to the same backing slice.
	got2, err := st.Assemble(ref2)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &got2[0] {
		t.Fatal("identical tensors do not share an assembly")
	}
	for _, h := range ref.Blocks {
		if r := st.Refs(h); r != 2 {
			t.Fatalf("block refs = %d, want 2", r)
		}
	}
	st.Release(ref)
	st.Release(ref2)
	st.Sweep()
	if s := st.Stats(); s.ResidentBlocks != 0 || s.ResidentBytes != 0 {
		t.Fatalf("store not empty: %+v", s)
	}
}

// TestSharedBlockSurvivesOwnerSweep: two tensors share a block; the
// assembly that owns the block's memory dies, the other tensor lives —
// the block must be copied out, not freed with its owner.
func TestSharedBlockSurvivesOwnerSweep(t *testing.T) {
	st := New()
	shared := randTensor(3, BlockElems) // exactly one block
	long := append(append([]float32(nil), shared...), randTensor(4, 50)...)
	refLong, _, err := st.Intern(long)
	if err != nil {
		t.Fatal(err)
	}
	refShared, fresh, err := st.Intern(shared)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 0 {
		t.Fatal("shared prefix block was not deduplicated")
	}
	if _, err := st.Assemble(refLong); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Assemble(refShared); err != nil {
		t.Fatal(err)
	}
	st.Release(refLong) // long tensor dies; it owns the shared block's bytes
	st.Sweep()
	if r := st.Refs(refShared.Blocks[0]); r != 1 {
		t.Fatalf("shared block refs = %d, want 1", r)
	}
	got, err := st.Assemble(refShared) // must still assemble correctly
	if err != nil {
		t.Fatal(err)
	}
	for i := range shared {
		if got[i] != shared[i] {
			t.Fatalf("shared block corrupted at %d after owner sweep", i)
		}
	}
	st.Release(refShared)
	st.Release(refShared)
	st.Sweep()
	if s := st.Stats(); s.ResidentBlocks != 0 {
		t.Fatalf("store not empty: %+v", s)
	}
}

// TestReleaseDoesNotFreeUntilSweep: drop-then-reload inside one atomic
// group must be able to re-reference blocks whose count hit zero.
func TestReleaseDoesNotFreeUntilSweep(t *testing.T) {
	st := New()
	data := randTensor(5, 100)
	ref, _, err := st.Intern(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Assemble(ref); err != nil {
		t.Fatal(err)
	}
	st.Release(ref)
	// No sweep yet: the block must still be assemblable.
	if _, err := st.Assemble(ref); err != nil {
		t.Fatalf("block freed before sweep: %v", err)
	}
	st.Release(ref)
	st.Sweep()
	if _, err := st.Assemble(ref); err == nil {
		t.Fatal("block survived sweep at zero refs")
	}
}

func TestStagedBytesAndReferencedHashes(t *testing.T) {
	st := New()
	data := randTensor(6, 200)
	h, err := st.PutStagedBytes(Encode(data))
	if err != nil {
		t.Fatal(err)
	}
	if h != HashOf(data) {
		t.Fatal("staged hash mismatch")
	}
	if !st.Has(h) || st.Refs(h) != 0 {
		t.Fatal("staged block must be resident with zero refs")
	}
	if got := st.ReferencedHashes(); len(got) != 0 {
		t.Fatalf("unreferenced block listed as referenced: %v", got)
	}
	ref := TensorRef{Elems: 200, Blocks: []Hash{h}}
	if _, err := st.Assemble(ref); err != nil {
		t.Fatal(err)
	}
	if got := st.ReferencedHashes(); len(got) != 1 || got[0] != h {
		t.Fatalf("want [%s], got %v", h, got)
	}
	st.Sweep() // referenced: survives
	if !st.Has(h) {
		t.Fatal("referenced block swept")
	}
}

// TestRefCountsRebuildDeterministic: refcounts derived from the same set
// of manifest refs are identical regardless of assembly order — the
// property recovery relies on.
func TestRefCountsRebuildDeterministic(t *testing.T) {
	build := func(order []int) map[Hash]int {
		st := New()
		tensors := [][]float32{
			randTensor(7, BlockElems+10),
			randTensor(8, 300),
			randTensor(7, BlockElems+10), // duplicate of the first
		}
		refs := make([]TensorRef, len(tensors))
		for i, d := range tensors {
			r, _, err := st.Intern(d)
			if err != nil {
				t.Fatal(err)
			}
			refs[i] = r
		}
		for _, i := range order {
			if _, err := st.Assemble(refs[i]); err != nil {
				t.Fatal(err)
			}
		}
		return st.RefCounts()
	}
	a := build([]int{0, 1, 2})
	b := build([]int{2, 1, 0})
	if len(a) != len(b) {
		t.Fatalf("refcount sets differ: %d vs %d", len(a), len(b))
	}
	for h, n := range a {
		if b[h] != n {
			t.Fatalf("refcount for %s: %d vs %d", h, n, b[h])
		}
	}
}

func TestConcurrentInternAssemble(t *testing.T) {
	st := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				data := randTensor(int64(i%5), 500) // heavy cross-goroutine overlap
				ref, _, err := st.Intern(data)
				if err != nil {
					t.Error(err)
					return
				}
				got, err := st.Assemble(ref)
				if err != nil {
					t.Error(err)
					return
				}
				if got[0] != data[0] {
					t.Error("assembled data mismatch")
					return
				}
				st.Release(ref)
			}
		}(g)
	}
	wg.Wait()
	st.Sweep()
	if s := st.Stats(); s.ResidentBlocks != 0 {
		t.Fatalf("store not empty after concurrent churn: %+v", s)
	}
}

func TestParseHash(t *testing.T) {
	h := HashOf([]float32{1, 2, 3})
	back, err := ParseHash(h.String())
	if err != nil || back != h {
		t.Fatalf("round trip failed: %v", err)
	}
	if _, err := ParseHash("zz"); err == nil {
		t.Fatal("bad hex accepted")
	}
	if _, err := ParseHash("abcd"); err == nil {
		t.Fatal("short hash accepted")
	}
}
