// Package blockstore is the content-addressed weight-block store behind
// many-model serving (ROADMAP item 3; arXiv 2201.10442): model tensors are
// split into fixed-size blocks, each block is keyed by the SHA-256 of its
// exact f32 bytes, and blocks are shared — on disk, in the WAL, on the
// replication wire, and in memory — across every model variant that
// contains them. Fine-tuned variants of a base model then cost only their
// delta blocks.
//
// Two kinds of objects live in the store:
//
//   - Blocks: immutable []float32 runs of at most BlockElems elements,
//     keyed by content hash. A block's refcount is the number of times it
//     occurs across the manifests of currently-registered models, so the
//     counts are rebuildable from manifests alone after a crash.
//   - Assemblies: the contiguous serving form of one tensor (the
//     concatenation of its blocks), keyed by a hash over the block list.
//     Two models whose tensors are bit-identical share one assembly — N
//     variants share memory, not just disk. Blocks alias into the first
//     assembly that contains them, so resident bytes are not double
//     counted.
//
// Release never frees immediately: the engine calls Sweep at the points
// where orphans can exist (after a model drop, after a replicated group,
// after WAL replay), so a resync that drops and reloads a model inside one
// atomic group never loses the blocks the reload is about to re-reference.
package blockstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"sync"
)

// BlockBytes is the block size: 64 KiB, i.e. two storage pages. Large
// enough that hash/bookkeeping overhead is noise against the payload,
// small enough that a head-only fine-tune of a multi-megabyte model
// shares all but a few blocks. The last block of a tensor may be short.
const BlockBytes = 64 << 10

// BlockElems is the block size in float32 elements.
const BlockElems = BlockBytes / 4

// Hash is the SHA-256 of a block's little-endian f32 bytes.
type Hash [sha256.Size]byte

// String returns the hash in hex — block file names use it.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// ParseHash parses a hex block hash (a block file name).
func ParseHash(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(h) {
		return Hash{}, fmt.Errorf("blockstore: bad hash %q", s)
	}
	copy(h[:], b)
	return h, nil
}

// Encode serialises a block payload as little-endian f32 bytes — the byte
// form hashed, written to block files, logged in RecBlock records, and
// shipped to replicas.
func Encode(data []float32) []byte {
	out := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

// Decode parses little-endian f32 block bytes.
func Decode(raw []byte) ([]float32, error) {
	if len(raw) == 0 || len(raw)%4 != 0 || len(raw) > BlockBytes {
		return nil, fmt.Errorf("blockstore: bad block payload length %d", len(raw))
	}
	out := make([]float32, len(raw)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out, nil
}

// HashOf returns the content hash of a block payload.
func HashOf(data []float32) Hash { return sha256.Sum256(Encode(data)) }

// TensorRef names one tensor's content: its element count and the ordered
// hashes of its blocks. It is the unit manifests are made of.
type TensorRef struct {
	Elems  int
	Blocks []Hash
}

// BlockCount returns the number of blocks an n-element tensor splits into.
func BlockCount(n int) int { return (n + BlockElems - 1) / BlockElems }

// valid checks that the ref's block count matches its element count.
func (r TensorRef) valid() error {
	if r.Elems <= 0 || len(r.Blocks) != BlockCount(r.Elems) {
		return fmt.Errorf("blockstore: ref of %d elems with %d blocks", r.Elems, len(r.Blocks))
	}
	return nil
}

// key is the assembly key: a hash over the ordered block list and the
// element count, so tensors with identical content share one assembly.
func (r TensorRef) key() Hash {
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(r.Elems))
	h.Write(n[:])
	for _, b := range r.Blocks {
		h.Write(b[:])
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

type block struct {
	refs int
	// data holds the block's elements. It is either a standalone array or
	// a subslice of owner.data (owner non-nil) — aliased blocks own no
	// memory of their own.
	data  []float32
	owner *assembly
}

type assembly struct {
	refs int
	data []float32
	// owned lists the blocks whose data aliases this assembly; Sweep
	// copies a still-referenced owned block back out before freeing.
	owned []Hash
}

// Stats is a snapshot of the store's counters. The *Added counters are
// monotonic (metric-counter semantics); Resident* describe live memory.
type Stats struct {
	BlocksAdded    uint64 // distinct blocks ever admitted
	BytesAdded     uint64 // payload bytes of distinct blocks ever admitted
	DedupHits      uint64 // Intern chunks that matched a resident block
	ResidentBlocks int
	ResidentBytes  int64 // assemblies + standalone (un-aliased) blocks
}

// Store is the in-memory block store. Safe for concurrent use.
type Store struct {
	mu         sync.Mutex
	blocks     map[Hash]*block
	assemblies map[Hash]*assembly

	blocksAdded uint64
	bytesAdded  uint64
	dedupHits   uint64
}

// New returns an empty store.
func New() *Store {
	return &Store{
		blocks:     make(map[Hash]*block),
		assemblies: make(map[Hash]*assembly),
	}
}

// Intern splits one tensor's elements into blocks and admits the blocks
// the store does not already hold. It takes NO references — a reference is
// taken per occurrence when the tensor is Assembled — and returns the
// tensor's ref plus the hashes that were new to the store (the ones a
// durable load must log). Chunks that matched a resident block count as
// dedup hits.
func (s *Store) Intern(data []float32) (TensorRef, []Hash, error) {
	if len(data) == 0 {
		return TensorRef{}, nil, fmt.Errorf("blockstore: empty tensor")
	}
	ref := TensorRef{Elems: len(data)}
	var fresh []Hash
	s.mu.Lock()
	defer s.mu.Unlock()
	for off := 0; off < len(data); off += BlockElems {
		end := min(off+BlockElems, len(data))
		chunk := data[off:end]
		h := HashOf(chunk)
		ref.Blocks = append(ref.Blocks, h)
		if _, ok := s.blocks[h]; ok {
			s.dedupHits++
			continue
		}
		s.admit(h, append([]float32(nil), chunk...))
		fresh = append(fresh, h)
	}
	return ref, fresh, nil
}

// admit inserts a new block (caller holds the lock and owns data).
func (s *Store) admit(h Hash, data []float32) {
	s.blocks[h] = &block{data: data}
	s.blocksAdded++
	s.bytesAdded += uint64(4 * len(data))
}

// PutStaged admits one block payload without taking a reference — the
// staging path for WAL replay, checkpoint load, and replication. Returns
// the payload's hash. Re-staging a resident block is a no-op.
func (s *Store) PutStaged(data []float32) (Hash, error) {
	if len(data) == 0 || len(data) > BlockElems {
		return Hash{}, fmt.Errorf("blockstore: staged block of %d elems", len(data))
	}
	h := HashOf(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blocks[h]; !ok {
		s.admit(h, append([]float32(nil), data...))
	}
	return h, nil
}

// PutStagedBytes stages a block from its wire/file byte form.
func (s *Store) PutStagedBytes(raw []byte) (Hash, error) {
	data, err := Decode(raw)
	if err != nil {
		return Hash{}, err
	}
	return s.PutStaged(data)
}

// Has reports whether the store holds the block.
func (s *Store) Has(h Hash) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.blocks[h]
	return ok
}

// Refs returns a block's reference count (0 for absent blocks).
func (s *Store) Refs(h Hash) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.blocks[h]; ok {
		return b.refs
	}
	return 0
}

// RefCounts snapshots every resident block's reference count.
func (s *Store) RefCounts() map[Hash]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Hash]int, len(s.blocks))
	for h, b := range s.blocks {
		out[h] = b.refs
	}
	return out
}

// BlockData returns a block's elements. The slice aliases store memory —
// callers must treat it as read-only and not retain it past a Sweep.
func (s *Store) BlockData(h Hash) ([]float32, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blocks[h]
	if !ok {
		return nil, false
	}
	return b.data, true
}

// ReferencedHashes returns the hashes of every block with refs > 0, in a
// deterministic (sorted) order — the set a checkpoint must persist.
func (s *Store) ReferencedHashes() []Hash {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Hash, 0, len(s.blocks))
	for h, b := range s.blocks {
		if b.refs > 0 {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// Assemble returns the contiguous serving slice for one tensor,
// referencing each block occurrence and the assembly. Identical tensors
// across models share one slice; every Assemble must be paired with one
// Release. The returned slice is shared — callers must not mutate it.
func (s *Store) Assemble(ref TensorRef) ([]float32, error) {
	if err := ref.valid(); err != nil {
		return nil, err
	}
	key := ref.key()
	s.mu.Lock()
	defer s.mu.Unlock()
	// Every block must be resident before anything is referenced, so a
	// dangling manifest fails cleanly.
	for _, h := range ref.Blocks {
		if _, ok := s.blocks[h]; !ok {
			return nil, fmt.Errorf("blockstore: dangling block %s", h)
		}
	}
	asm, ok := s.assemblies[key]
	if !ok {
		asm = &assembly{data: make([]float32, ref.Elems)}
		for i, h := range ref.Blocks {
			b := s.blocks[h]
			off := i * BlockElems
			copy(asm.data[off:], b.data)
			// Re-point standalone blocks into the assembly so resident
			// bytes are counted once. A block already aliased into another
			// assembly keeps that owner.
			if b.owner == nil {
				b.data = asm.data[off : off+len(b.data)]
				b.owner = asm
				asm.owned = append(asm.owned, h)
			}
		}
		s.assemblies[key] = asm
	}
	asm.refs++
	for _, h := range ref.Blocks {
		s.blocks[h].refs++
	}
	return asm.data, nil
}

// Release undoes one Assemble: the assembly and each block occurrence lose
// one reference. Memory is reclaimed by the next Sweep, never here.
func (s *Store) Release(ref TensorRef) {
	if ref.valid() != nil {
		return
	}
	key := ref.key()
	s.mu.Lock()
	defer s.mu.Unlock()
	if asm, ok := s.assemblies[key]; ok {
		asm.refs--
	}
	for _, h := range ref.Blocks {
		if b, ok := s.blocks[h]; ok {
			b.refs--
		}
	}
}

// Sweep frees every assembly and block whose reference count has reached
// zero. A still-referenced block that aliased a dying assembly gets its
// bytes copied back out first, so block data survives its first owner.
func (s *Store) Sweep() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for key, asm := range s.assemblies {
		if asm.refs > 0 {
			continue
		}
		for _, h := range asm.owned {
			b, ok := s.blocks[h]
			if !ok || b.owner != asm {
				continue
			}
			if b.refs > 0 {
				b.data = append([]float32(nil), b.data...)
				b.owner = nil
			}
		}
		delete(s.assemblies, key)
	}
	for h, b := range s.blocks {
		if b.refs <= 0 && (b.owner == nil || s.dead(b.owner)) {
			delete(s.blocks, h)
		}
	}
}

// dead reports whether asm was freed by this Sweep (no longer indexed).
func (s *Store) dead(asm *assembly) bool {
	for _, a := range s.assemblies {
		if a == asm {
			return false
		}
	}
	return true
}

// Stats returns the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		BlocksAdded:    s.blocksAdded,
		BytesAdded:     s.bytesAdded,
		DedupHits:      s.dedupHits,
		ResidentBlocks: len(s.blocks),
	}
	for _, a := range s.assemblies {
		st.ResidentBytes += int64(4 * len(a.data))
	}
	for _, b := range s.blocks {
		if b.owner == nil {
			st.ResidentBytes += int64(4 * len(b.data))
		}
	}
	return st
}
