package storage

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"
)

// Concurrent fetchers racing on a pool far smaller than the page set: every
// fetch must observe the page's full on-disk bytes, never the half-read
// frame of a concurrent miss on the same page. Run under -race this also
// checks the pool's internal synchronisation.
func TestConcurrentFetchUnderEviction(t *testing.T) {
	d := newDisk(t)
	const pages = 32
	ids := make([]PageID, pages)
	for i := range ids {
		id, err := d.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, PageSize)
		// Stamp every 8 bytes with the page index so a torn read is
		// detectable anywhere in the page.
		for off := 0; off+8 <= PageSize-checksumSize; off += 8 {
			binary.LittleEndian.PutUint64(buf[off:], uint64(i)+1)
		}
		if err := d.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	// 6 frames over 32 pages forces constant eviction; 4 fetchers each pin
	// at most one page, so a victim frame always exists (no pinned-out
	// false failures).
	pool := NewBufferPool(d, 6)
	var wg sync.WaitGroup
	errs := make(chan string, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for n := 0; n < 500; n++ {
				i := r.Intn(pages)
				f, err := pool.Fetch(ids[i])
				if err != nil {
					errs <- err.Error()
					return
				}
				data := f.Data()
				for off := 0; off+8 <= PageSize-checksumSize; off += 8 {
					if got := binary.LittleEndian.Uint64(data[off:]); got != uint64(i)+1 {
						errs <- "torn page read"
						pool.Unpin(ids[i], false)
						return
					}
				}
				if err := pool.Unpin(ids[i], false); err != nil {
					errs <- err.Error()
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	st := pool.Stats()
	if st.Evictions == 0 {
		t.Fatal("test did not exercise eviction")
	}
}

// Same race on the Clock policy, which shares the miss path but picks
// victims differently.
func TestConcurrentFetchClockPolicy(t *testing.T) {
	d := newDisk(t)
	const pages = 16
	ids := make([]PageID, pages)
	for i := range ids {
		id, _ := d.Allocate()
		buf := make([]byte, PageSize)
		for off := range buf {
			buf[off] = byte(i + 1)
		}
		if err := d.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	// 3 single-pin fetchers over 5 frames: a victim always exists.
	pool := NewBufferPoolWithPolicy(d, 5, Clock)
	var wg sync.WaitGroup
	var failed sync.Map
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for n := 0; n < 300; n++ {
				i := r.Intn(pages)
				f, err := pool.Fetch(ids[i])
				if err != nil {
					failed.Store(err.Error(), true)
					return
				}
				if f.Data()[0] != byte(i+1) || f.Data()[PageSize-checksumSize-1] != byte(i+1) {
					failed.Store("torn read", true)
				}
				pool.Unpin(ids[i], false)
			}
		}(int64(g))
	}
	wg.Wait()
	failed.Range(func(k, _ any) bool {
		t.Fatal(k)
		return false
	})
}
