package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Slotted page layout. Records grow from the end of the record region toward
// the header; the slot directory grows from the header toward the records.
// The last checksumSize bytes of the page are reserved for the disk-level
// page checksum and never hold record data.
//
//	bytes 0..1   uint16 slot count
//	bytes 2..3   uint16 free-space end (records start here, grows down)
//	bytes 4..7   uint32 next page id in the heap-file chain
//	bytes 8..    slot directory: per slot uint16 offset, uint16 length
//
// A slot with offset 0 marks a deleted record (0 can never be a valid
// record offset because the header occupies it).
//
// Panic policy: this type panics only on programmer errors (a buffer of the
// wrong size handed to NewPage). Structural damage in the page bytes
// themselves — a free-space pointer or slot entry pointing outside the page,
// which the checksum cannot catch if the page was corrupted before it was
// written — is untrusted input and is returned as an error wrapping
// ErrCorruptPage, never a panic.

const (
	pageHeaderSize = 8
	slotSize       = 4
	// recordLimit is the end of the usable record region: the page minus the
	// disk-level checksum tail.
	recordLimit = PageSize - checksumSize
)

// ErrPageFull is returned when a record does not fit in the page.
var ErrPageFull = errors.New("storage: page full")

// ErrCorruptPage is returned when a page's slot directory or free-space
// bookkeeping points outside the page — structural corruption that survived
// (or predated) the disk checksum.
var ErrCorruptPage = errors.New("storage: corrupt page structure")

// Page is a slotted record page over a PageSize byte buffer.
type Page struct {
	buf []byte
}

// NewPage wraps buf (length PageSize) as a slotted page. The caller must
// have initialised it (InitPage) or read it from disk.
func NewPage(buf []byte) *Page {
	if len(buf) != PageSize {
		panic(fmt.Sprintf("storage: page buffer is %d bytes, want %d", len(buf), PageSize))
	}
	return &Page{buf: buf}
}

// InitPage formats buf as an empty slotted page.
func InitPage(buf []byte) *Page {
	p := NewPage(buf)
	p.setSlotCount(0)
	p.setFreeEnd(recordLimit)
	p.SetNext(InvalidPageID)
	return p
}

func (p *Page) slotCount() int     { return int(binary.LittleEndian.Uint16(p.buf[0:2])) }
func (p *Page) setSlotCount(n int) { binary.LittleEndian.PutUint16(p.buf[0:2], uint16(n)) }
func (p *Page) freeEnd() int       { return int(binary.LittleEndian.Uint16(p.buf[2:4])) }
func (p *Page) setFreeEnd(off int) { binary.LittleEndian.PutUint16(p.buf[2:4], uint16(off)) }

// Next returns the next page id in the heap-file chain.
func (p *Page) Next() PageID { return PageID(binary.LittleEndian.Uint32(p.buf[4:8])) }

// SetNext links this page to the next page in the heap-file chain.
func (p *Page) SetNext(id PageID) { binary.LittleEndian.PutUint32(p.buf[4:8], uint32(id)) }

// NumSlots returns the number of slots (including deleted ones).
func (p *Page) NumSlots() int { return p.slotCount() }

// slotOK reports whether slot i's directory entry lies inside the page.
// A corrupt slot count can claim more entries than fit before the record
// region; reading those would walk off the buffer.
func (p *Page) slotOK(i int) bool {
	return pageHeaderSize+(i+1)*slotSize <= recordLimit
}

func (p *Page) slotAt(i int) (off, length int) {
	base := pageHeaderSize + i*slotSize
	return int(binary.LittleEndian.Uint16(p.buf[base : base+2])),
		int(binary.LittleEndian.Uint16(p.buf[base+2 : base+4]))
}

func (p *Page) setSlotAt(i, off, length int) {
	base := pageHeaderSize + i*slotSize
	binary.LittleEndian.PutUint16(p.buf[base:base+2], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[base+2:base+4], uint16(length))
}

// FreeSpace returns the bytes available for one more record (accounting for
// its slot directory entry). Negative or corrupt results clamp to zero.
func (p *Page) FreeSpace() int {
	end := p.freeEnd()
	if end > recordLimit {
		return 0
	}
	free := end - (pageHeaderSize + p.slotCount()*slotSize) - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// MaxRecordSize is the largest record that fits in an empty page.
const MaxRecordSize = recordLimit - pageHeaderSize - slotSize

// Insert stores rec in the page and returns its slot index.
// It returns ErrPageFull if the record does not fit, and an error wrapping
// ErrCorruptPage if the page's free-space bookkeeping is out of bounds.
func (p *Page) Insert(rec []byte) (int, error) {
	if len(rec) > MaxRecordSize {
		return 0, fmt.Errorf("storage: record of %d bytes exceeds max %d", len(rec), MaxRecordSize)
	}
	end := p.freeEnd()
	if end < pageHeaderSize || end > recordLimit {
		return 0, fmt.Errorf("%w: free-space end %d outside [%d,%d]", ErrCorruptPage, end, pageHeaderSize, recordLimit)
	}
	if len(rec) > p.FreeSpace() {
		return 0, ErrPageFull
	}
	off := end - len(rec)
	copy(p.buf[off:], rec)
	slot := p.slotCount()
	p.setSlotAt(slot, off, len(rec))
	p.setSlotCount(slot + 1)
	p.setFreeEnd(off)
	return slot, nil
}

// Record returns the record in the given slot. The returned slice aliases
// the page buffer; callers must copy if they retain it past the pin.
// ok is false for deleted or out-of-range slots; a non-nil error (wrapping
// ErrCorruptPage) means the slot directory points outside the page.
func (p *Page) Record(slot int) (rec []byte, ok bool, err error) {
	if slot < 0 || slot >= p.slotCount() {
		return nil, false, nil
	}
	if !p.slotOK(slot) {
		return nil, false, fmt.Errorf("%w: slot %d directory entry beyond page end (slot count %d)", ErrCorruptPage, slot, p.slotCount())
	}
	off, length := p.slotAt(slot)
	if off == 0 {
		return nil, false, nil // deleted
	}
	if off < pageHeaderSize || off+length > recordLimit {
		return nil, false, fmt.Errorf("%w: slot %d record bounds [%d,%d) outside page", ErrCorruptPage, slot, off, off+length)
	}
	return p.buf[off : off+length], true, nil
}

// TruncateSlots discards every slot at index n and above, returning the
// page to its state when it held exactly n slots — crash recovery uses it
// to roll a heap's tail page back to the slot count the last checkpoint
// recorded, so WAL replay re-inserts committed post-checkpoint tuples
// without duplication. The free-space end is restored from the deepest
// surviving record (records grow downward in slot order, so that is the
// last non-deleted surviving slot); the truncated bytes are left in place
// and overwritten by future inserts.
func (p *Page) TruncateSlots(n int) error {
	if n < 0 || n > p.slotCount() {
		return fmt.Errorf("%w: truncate to %d slots, page has %d", ErrCorruptPage, n, p.slotCount())
	}
	end := recordLimit
	for i := n - 1; i >= 0; i-- {
		if !p.slotOK(i) {
			return fmt.Errorf("%w: slot %d directory entry beyond page end", ErrCorruptPage, i)
		}
		off, length := p.slotAt(i)
		if off == 0 {
			continue // deleted slot holds no bytes
		}
		if off < pageHeaderSize || off+length > recordLimit {
			return fmt.Errorf("%w: slot %d record bounds [%d,%d) outside page", ErrCorruptPage, i, off, off+length)
		}
		end = off
		break
	}
	p.setSlotCount(n)
	p.setFreeEnd(end)
	return nil
}

// Delete marks the record in slot as deleted. Space is not compacted.
// It returns false for already-deleted, out-of-range, or corrupt slots.
func (p *Page) Delete(slot int) bool {
	if slot < 0 || slot >= p.slotCount() || !p.slotOK(slot) {
		return false
	}
	off, _ := p.slotAt(slot)
	if off == 0 {
		return false
	}
	p.setSlotAt(slot, 0, 0)
	return true
}
