package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Slotted page layout. Records grow from the end of the page toward the
// header; the slot directory grows from the header toward the records.
//
//	bytes 0..1   uint16 slot count
//	bytes 2..3   uint16 free-space end (records start here, grows down)
//	bytes 4..7   uint32 next page id in the heap-file chain
//	bytes 8..    slot directory: per slot uint16 offset, uint16 length
//
// A slot with offset 0 marks a deleted record (0 can never be a valid
// record offset because the header occupies it).

const (
	pageHeaderSize = 8
	slotSize       = 4
)

// ErrPageFull is returned when a record does not fit in the page.
var ErrPageFull = errors.New("storage: page full")

// Page is a slotted record page over a PageSize byte buffer.
type Page struct {
	buf []byte
}

// NewPage wraps buf (length PageSize) as a slotted page. The caller must
// have initialised it (InitPage) or read it from disk.
func NewPage(buf []byte) *Page {
	if len(buf) != PageSize {
		panic(fmt.Sprintf("storage: page buffer is %d bytes, want %d", len(buf), PageSize))
	}
	return &Page{buf: buf}
}

// InitPage formats buf as an empty slotted page.
func InitPage(buf []byte) *Page {
	p := NewPage(buf)
	p.setSlotCount(0)
	p.setFreeEnd(PageSize)
	p.SetNext(InvalidPageID)
	return p
}

func (p *Page) slotCount() int     { return int(binary.LittleEndian.Uint16(p.buf[0:2])) }
func (p *Page) setSlotCount(n int) { binary.LittleEndian.PutUint16(p.buf[0:2], uint16(n)) }
func (p *Page) freeEnd() int       { return int(binary.LittleEndian.Uint16(p.buf[2:4])) }
func (p *Page) setFreeEnd(off int) { binary.LittleEndian.PutUint16(p.buf[2:4], uint16(off)) }

// Next returns the next page id in the heap-file chain.
func (p *Page) Next() PageID { return PageID(binary.LittleEndian.Uint32(p.buf[4:8])) }

// SetNext links this page to the next page in the heap-file chain.
func (p *Page) SetNext(id PageID) { binary.LittleEndian.PutUint32(p.buf[4:8], uint32(id)) }

// NumSlots returns the number of slots (including deleted ones).
func (p *Page) NumSlots() int { return p.slotCount() }

func (p *Page) slotAt(i int) (off, length int) {
	base := pageHeaderSize + i*slotSize
	return int(binary.LittleEndian.Uint16(p.buf[base : base+2])),
		int(binary.LittleEndian.Uint16(p.buf[base+2 : base+4]))
}

func (p *Page) setSlotAt(i, off, length int) {
	base := pageHeaderSize + i*slotSize
	binary.LittleEndian.PutUint16(p.buf[base:base+2], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[base+2:base+4], uint16(length))
}

// FreeSpace returns the bytes available for one more record (accounting for
// its slot directory entry). Negative results clamp to zero.
func (p *Page) FreeSpace() int {
	free := p.freeEnd() - (pageHeaderSize + p.slotCount()*slotSize) - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// MaxRecordSize is the largest record that fits in an empty page.
const MaxRecordSize = PageSize - pageHeaderSize - slotSize

// Insert stores rec in the page and returns its slot index.
// It returns ErrPageFull if the record does not fit.
func (p *Page) Insert(rec []byte) (int, error) {
	if len(rec) > MaxRecordSize {
		return 0, fmt.Errorf("storage: record of %d bytes exceeds max %d", len(rec), MaxRecordSize)
	}
	if len(rec) > p.FreeSpace() {
		return 0, ErrPageFull
	}
	off := p.freeEnd() - len(rec)
	copy(p.buf[off:], rec)
	slot := p.slotCount()
	p.setSlotAt(slot, off, len(rec))
	p.setSlotCount(slot + 1)
	p.setFreeEnd(off)
	return slot, nil
}

// Record returns the record in the given slot. The returned slice aliases
// the page buffer; callers must copy if they retain it past the pin.
// It returns false for deleted or out-of-range slots.
func (p *Page) Record(slot int) ([]byte, bool) {
	if slot < 0 || slot >= p.slotCount() {
		return nil, false
	}
	off, length := p.slotAt(slot)
	if off == 0 {
		return nil, false // deleted
	}
	return p.buf[off : off+length], true
}

// Delete marks the record in slot as deleted. Space is not compacted.
// It returns false for already-deleted or out-of-range slots.
func (p *Page) Delete(slot int) bool {
	if slot < 0 || slot >= p.slotCount() {
		return false
	}
	off, _ := p.slotAt(slot)
	if off == 0 {
		return false
	}
	p.setSlotAt(slot, 0, 0)
	return true
}
