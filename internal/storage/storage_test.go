package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func newDisk(t *testing.T) *DiskManager {
	t.Helper()
	d, err := OpenDisk(filepath.Join(t.TempDir(), "test.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestDiskAllocateReadWrite(t *testing.T) {
	d := newDisk(t)
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, PageSize)
	out[0], out[PageSize-1] = 0xAB, 0xCD
	if err := d.Write(id, out); err != nil {
		t.Fatal(err)
	}
	in := make([]byte, PageSize)
	if err := d.Read(id, in); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Fatal("read back different bytes")
	}
}

func TestDiskRejectsOutOfRange(t *testing.T) {
	d := newDisk(t)
	buf := make([]byte, PageSize)
	if err := d.Read(5, buf); err == nil {
		t.Fatal("read beyond end must error")
	}
	if err := d.Write(5, buf); err == nil {
		t.Fatal("write beyond end must error")
	}
	if err := d.Read(0, make([]byte, 10)); err == nil {
		t.Fatal("short buffer must error")
	}
}

func TestDiskPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.db")
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := d.Allocate()
	page := make([]byte, PageSize)
	copy(page, "hello pages")
	if err := d.Write(id, page); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.NumPages() != 1 {
		t.Fatalf("NumPages = %d after reopen", d2.NumPages())
	}
	in := make([]byte, PageSize)
	if err := d2.Read(id, in); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(in, []byte("hello pages")) {
		t.Fatal("contents lost across reopen")
	}
}

func TestPageInsertAndRecord(t *testing.T) {
	buf := make([]byte, PageSize)
	p := InitPage(buf)
	s0, err := p.Insert([]byte("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := p.Insert([]byte("beta"))
	if err != nil {
		t.Fatal(err)
	}
	if s0 == s1 {
		t.Fatal("slots must differ")
	}
	r, ok, rerr := p.Record(s0)
	if rerr != nil || !ok || string(r) != "alpha" {
		t.Fatalf("Record(s0) = %q, %v, %v", r, ok, rerr)
	}
	r, ok, rerr = p.Record(s1)
	if rerr != nil || !ok || string(r) != "beta" {
		t.Fatalf("Record(s1) = %q, %v, %v", r, ok, rerr)
	}
}

func TestPageFull(t *testing.T) {
	p := InitPage(make([]byte, PageSize))
	rec := make([]byte, 1000)
	inserted := 0
	for {
		if _, err := p.Insert(rec); err != nil {
			if !errors.Is(err, ErrPageFull) {
				t.Fatalf("unexpected error %v", err)
			}
			break
		}
		inserted++
	}
	// ~1004 bytes per record incl. its slot entry.
	want := (PageSize - checksumSize - 8) / 1004
	if inserted != want {
		t.Fatalf("inserted %d 1000-byte records, want %d", inserted, want)
	}
}

func TestPageRejectsOversizeRecord(t *testing.T) {
	p := InitPage(make([]byte, PageSize))
	if _, err := p.Insert(make([]byte, MaxRecordSize+1)); err == nil {
		t.Fatal("oversize record must error")
	}
	if _, err := p.Insert(make([]byte, MaxRecordSize)); err != nil {
		t.Fatalf("max-size record must fit: %v", err)
	}
}

func TestPageDelete(t *testing.T) {
	p := InitPage(make([]byte, PageSize))
	s, _ := p.Insert([]byte("x"))
	if !p.Delete(s) {
		t.Fatal("delete failed")
	}
	if _, ok, err := p.Record(s); ok || err != nil {
		t.Fatalf("deleted record still visible (ok=%v err=%v)", ok, err)
	}
	if p.Delete(s) {
		t.Fatal("double delete must fail")
	}
	if p.Delete(99) {
		t.Fatal("out-of-range delete must fail")
	}
}

func TestPageNextChain(t *testing.T) {
	p := InitPage(make([]byte, PageSize))
	if p.Next() != InvalidPageID {
		t.Fatal("fresh page must have no next")
	}
	p.SetNext(42)
	if p.Next() != 42 {
		t.Fatalf("Next = %d", p.Next())
	}
}

// Property: any sequence of inserted records that fits reads back intact
// and in order.
func TestPageRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := InitPage(make([]byte, PageSize))
		var want [][]byte
		for i := 0; i < 50; i++ {
			rec := make([]byte, 1+r.Intn(200))
			r.Read(rec)
			if _, err := p.Insert(rec); err != nil {
				break
			}
			want = append(want, rec)
		}
		for i, w := range want {
			got, ok, err := p.Record(i)
			if err != nil || !ok || !bytes.Equal(got, w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBufferPoolFetchHitMiss(t *testing.T) {
	d := newDisk(t)
	p := NewBufferPool(d, 4)
	f, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	f.Data()[100] = 0x42
	if err := p.Unpin(id, true); err != nil {
		t.Fatal(err)
	}
	f2, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Data()[100] != 0x42 {
		t.Fatal("fetch returned stale data")
	}
	p.Unpin(id, false)
	st := p.Stats()
	if st.Hits != 1 {
		t.Fatalf("Hits = %d, want 1", st.Hits)
	}
}

func TestBufferPoolEvictsLRUAndWritesBack(t *testing.T) {
	d := newDisk(t)
	p := NewBufferPool(d, 2)
	ids := make([]PageID, 3)
	for i := range ids {
		f, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = f.ID()
		f.Data()[0] = byte(i + 1)
		if err := p.Unpin(f.ID(), true); err != nil {
			t.Fatal(err)
		}
	}
	// Pool has 2 frames; creating 3 pages must have evicted page 0 dirty.
	st := p.Stats()
	if st.Evictions == 0 || st.DirtyOut == 0 {
		t.Fatalf("expected dirty eviction, stats %+v", st)
	}
	// Page 0 must read back from disk with its data intact.
	f, err := p.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if f.Data()[0] != 1 {
		t.Fatalf("evicted page lost data: %d", f.Data()[0])
	}
	p.Unpin(ids[0], false)
}

func TestBufferPoolAllPinned(t *testing.T) {
	d := newDisk(t)
	p := NewBufferPool(d, 2)
	for i := 0; i < 2; i++ {
		if _, err := p.NewPage(); err != nil {
			t.Fatal(err)
		}
		// Intentionally not unpinned.
	}
	if _, err := p.NewPage(); !errors.Is(err, ErrNoFreeFrames) {
		t.Fatalf("err = %v, want ErrNoFreeFrames", err)
	}
}

func TestBufferPoolUnpinErrors(t *testing.T) {
	d := newDisk(t)
	p := NewBufferPool(d, 2)
	if err := p.Unpin(7, false); err == nil {
		t.Fatal("unpin of non-resident page must error")
	}
	f, _ := p.NewPage()
	p.Unpin(f.ID(), false)
	if err := p.Unpin(f.ID(), false); err == nil {
		t.Fatal("unpin below zero must error")
	}
}

func TestBufferPoolPinPreventsEviction(t *testing.T) {
	d := newDisk(t)
	p := NewBufferPool(d, 2)
	pinned, _ := p.NewPage()
	pinnedID := pinned.ID()
	// Churn through many pages with the other frame.
	for i := 0; i < 10; i++ {
		f, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(f.ID(), false)
	}
	// The pinned page must still be resident with pins intact.
	f, err := p.Fetch(pinnedID)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	p.Unpin(pinnedID, false)
	p.Unpin(pinnedID, false)
	_ = f
	if st.Hits == 0 {
		t.Fatal("pinned page should have been a hit")
	}
}

func TestBufferPoolFlushAll(t *testing.T) {
	d := newDisk(t)
	p := NewBufferPool(d, 4)
	f, _ := p.NewPage()
	id := f.ID()
	f.Data()[7] = 0x99
	p.Unpin(id, true)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := d.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[7] != 0x99 {
		t.Fatal("FlushAll did not write dirty page")
	}
}

func TestBufferPoolConcurrentAccess(t *testing.T) {
	d := newDisk(t)
	p := NewBufferPool(d, 8)
	var ids []PageID
	for i := 0; i < 16; i++ {
		f, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		f.Data()[0] = byte(i)
		ids = append(ids, f.ID())
		p.Unpin(f.ID(), true)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				id := ids[r.Intn(len(ids))]
				f, err := p.Fetch(id)
				if err != nil {
					errs <- err
					return
				}
				if f.ID() != id {
					errs <- fmt.Errorf("frame holds page %d, want %d", f.ID(), id)
				}
				if err := p.Unpin(id, false); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestBufferPoolDataSurvivesEvictionChurn(t *testing.T) {
	d := newDisk(t)
	p := NewBufferPool(d, 3)
	const n = 20
	ids := make([]PageID, n)
	for i := 0; i < n; i++ {
		f, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = f.ID()
		for j := 0; j < 16; j++ {
			f.Data()[j] = byte(i * j)
		}
		p.Unpin(f.ID(), true)
	}
	for i := 0; i < n; i++ {
		f, err := p.Fetch(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 16; j++ {
			if f.Data()[j] != byte(i*j) {
				t.Fatalf("page %d byte %d = %d, want %d", i, j, f.Data()[j], byte(i*j))
			}
		}
		p.Unpin(ids[i], false)
	}
}

func TestOperationsAfterCloseError(t *testing.T) {
	d, err := OpenDisk(filepath.Join(t.TempDir(), "closed.db"))
	if err != nil {
		t.Fatal(err)
	}
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := d.Read(id, buf); err == nil {
		t.Fatal("read after close must error")
	}
	if err := d.Write(id, buf); err == nil {
		t.Fatal("write after close must error")
	}
	if _, err := d.Allocate(); err == nil {
		t.Fatal("allocate after close must error")
	}
}

func TestBufferPoolSurfacesDiskErrors(t *testing.T) {
	d, err := OpenDisk(filepath.Join(t.TempDir(), "err.db"))
	if err != nil {
		t.Fatal(err)
	}
	p := NewBufferPool(d, 2)
	f, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f.ID(), true)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Fetching an unknown page after close must fail cleanly, not panic.
	if _, err := p.Fetch(99); err == nil {
		t.Fatal("fetch after close must error")
	}
	if err := p.FlushAll(); err == nil {
		t.Fatal("flush of dirty pages after close must error")
	}
}

func TestDiskIOStats(t *testing.T) {
	d := newDisk(t)
	id, _ := d.Allocate()
	buf := make([]byte, PageSize)
	d.Write(id, buf)
	d.Read(id, buf)
	r, w := d.IOStats()
	if r != 1 || w != 1 {
		t.Fatalf("reads=%d writes=%d", r, w)
	}
}

func TestOpenDiskRejectsPartialFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.db")
	if err := os.WriteFile(path, make([]byte, PageSize+1), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(path); err == nil {
		t.Fatal("non-page-aligned file must be rejected")
	}
}

func newClockPool(t *testing.T, frames int) *BufferPool {
	t.Helper()
	d := newDisk(t)
	return NewBufferPoolWithPolicy(d, frames, Clock)
}

func TestClockPoolEvictsAndPreservesData(t *testing.T) {
	p := newClockPool(t, 3)
	const n = 20
	ids := make([]PageID, n)
	for i := 0; i < n; i++ {
		f, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = f.ID()
		f.Data()[0] = byte(i)
		if err := p.Unpin(f.ID(), true); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		f, err := p.Fetch(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		if f.Data()[0] != byte(i) {
			t.Fatalf("page %d lost data under clock eviction", i)
		}
		p.Unpin(ids[i], false)
	}
	if p.Stats().Evictions == 0 {
		t.Fatal("expected clock evictions")
	}
}

func TestClockPoolSecondChance(t *testing.T) {
	p := newClockPool(t, 2)
	hot, _ := p.NewPage()
	hotID := hot.ID()
	p.Unpin(hotID, true)
	cold, _ := p.NewPage()
	coldID := cold.ID()
	p.Unpin(coldID, true)
	// Touch the hot page so its ref bit is set.
	if _, err := p.Fetch(hotID); err != nil {
		t.Fatal(err)
	}
	p.Unpin(hotID, false)
	// A new page must evict the cold page (no ref bit), not the hot one.
	f, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f.ID(), false)
	p.mu.Lock()
	_, hotResident := p.table[hotID]
	_, coldResident := p.table[coldID]
	p.mu.Unlock()
	if !hotResident || coldResident {
		t.Fatalf("second chance violated: hot=%v cold=%v", hotResident, coldResident)
	}
}

func TestClockPoolAllPinned(t *testing.T) {
	p := newClockPool(t, 2)
	for i := 0; i < 2; i++ {
		if _, err := p.NewPage(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.NewPage(); !errors.Is(err, ErrNoFreeFrames) {
		t.Fatalf("err = %v, want ErrNoFreeFrames", err)
	}
}
