package storage

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNoFreeFrames is returned when every frame in the pool is pinned.
var ErrNoFreeFrames = errors.New("storage: all buffer frames pinned")

// Frame is a buffer-pool slot holding one page.
type Frame struct {
	id    PageID
	data  [PageSize]byte
	pins  int
	dirty bool
	// refBit marks recent use under the Clock policy.
	refBit bool
	// lruPrev/lruNext link unpinned frames into the pool's intrusive LRU
	// list (head = least recently used). Intrusive links instead of
	// container/list keep the hot fetch/unpin cycle allocation-free.
	lruPrev, lruNext *Frame
	inLRU            bool
	// ready is closed once the frame's bytes are valid. A fetcher that
	// hits a frame whose disk read is still in flight (a concurrent miss
	// on the same page) pins it and waits on ready instead of returning
	// half-read bytes.
	ready chan struct{}
	// loadErr records a failed disk read; waiters observe it after ready
	// closes and release their pins instead of using the frame.
	loadErr error
}

// ID returns the page id currently held by the frame.
func (f *Frame) ID() PageID { return f.id }

// Data returns the frame's page bytes. Valid only while pinned.
func (f *Frame) Data() []byte { return f.data[:] }

// Page returns a slotted-page view of the frame. Valid only while pinned.
func (f *Frame) Page() *Page { return NewPage(f.data[:]) }

// Record returns the record in the given slot without allocating a page
// wrapper — the zero-alloc read path block-streaming loops use. The slice
// aliases the frame and is valid only while pinned. A non-nil error means
// the slot directory is structurally corrupt (see Page.Record).
func (f *Frame) Record(slot int) ([]byte, bool, error) {
	p := Page{buf: f.data[:]}
	return p.Record(slot)
}

// PoolStats reports buffer pool activity; Evictions counts pages written
// back or dropped to make room — the disk-spilling behaviour that lets the
// relation-centric representation run tensors larger than memory.
type PoolStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	DirtyOut  uint64 // evictions that required a write-back
}

// Policy selects the pool's page-replacement algorithm.
type Policy int

// Replacement policies.
const (
	// LRU evicts the least recently unpinned page (default).
	LRU Policy = iota
	// Clock sweeps a hand over the frames, giving each referenced page a
	// second chance — cheaper bookkeeping per hit than LRU.
	Clock
)

// BufferPool caches pages in a fixed number of frames with a configurable
// replacement policy. Fetched pages are pinned and must be unpinned
// (marking dirty if modified). It is safe for concurrent use.
type BufferPool struct {
	mu     sync.Mutex
	disk   *DiskManager
	policy Policy
	frames []*Frame
	table  map[PageID]*Frame
	free   []*Frame
	// lruHead/lruTail bound the intrusive list of unpinned frames,
	// head = least recently used (LRU policy).
	lruHead, lruTail *Frame
	hand             int // sweep position (Clock policy)
	stats            PoolStats
}

// NewBufferPool returns an LRU pool of n frames over disk.
func NewBufferPool(disk *DiskManager, n int) *BufferPool {
	return NewBufferPoolWithPolicy(disk, n, LRU)
}

// NewBufferPoolWithPolicy returns a pool of n frames with the given
// replacement policy.
func NewBufferPoolWithPolicy(disk *DiskManager, n int, policy Policy) *BufferPool {
	if n < 1 {
		panic("storage: buffer pool needs at least one frame")
	}
	p := &BufferPool{
		disk:   disk,
		policy: policy,
		frames: make([]*Frame, n),
		table:  make(map[PageID]*Frame, n),
	}
	for i := range p.frames {
		f := &Frame{id: InvalidPageID}
		p.frames[i] = f
		p.free = append(p.free, f)
	}
	return p
}

// Size returns the number of frames.
func (p *BufferPool) Size() int { return len(p.frames) }

// Pinned returns the number of frames with a non-zero pin count. A query
// that finished — successfully, with an error, or cancelled — must leave
// this at its pre-query value; leak tests assert it returns to zero.
func (p *BufferPool) Pinned() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, f := range p.frames {
		if f.pins > 0 {
			n++
		}
	}
	return n
}

// Stats returns a snapshot of pool counters.
func (p *BufferPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// readyClosed is shared by frames whose bytes are valid from birth
// (freshly formatted pages).
var readyClosed = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// Fetch pins page id into a frame, reading it from disk on a miss. On a
// concurrent miss — another fetcher is mid-read of the same page — Fetch
// waits for that read to complete rather than observing partial bytes, so
// parallel block workers can hammer the same operand pages safely.
func (p *BufferPool) Fetch(id PageID) (*Frame, error) {
	p.mu.Lock()
	if f, ok := p.table[id]; ok {
		p.stats.Hits++
		p.pinLocked(f)
		ready := f.ready
		p.mu.Unlock()
		<-ready
		// loadErr was written before ready closed, so this read is ordered.
		if err := f.loadErr; err != nil {
			p.mu.Lock()
			p.dropFailedPinLocked(f)
			p.mu.Unlock()
			return nil, err
		}
		return f, nil
	}
	p.stats.Misses++
	f, err := p.victimLocked()
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	f.id = id
	f.pins = 1
	f.dirty = false
	f.loadErr = nil
	f.ready = make(chan struct{})
	p.table[id] = f
	p.mu.Unlock()
	// Read outside the lock: the frame is pinned so it cannot be evicted,
	// and concurrent fetchers of the same page wait on f.ready.
	rerr := p.disk.Read(id, f.data[:])
	p.mu.Lock()
	defer p.mu.Unlock()
	if rerr != nil {
		f.loadErr = rerr
		close(f.ready)
		p.dropFailedPinLocked(f)
		return nil, rerr
	}
	close(f.ready)
	return f, nil
}

// dropFailedPinLocked releases one pin on a frame whose load failed; the
// last pin out removes it from the table so the page can be retried.
func (p *BufferPool) dropFailedPinLocked(f *Frame) {
	f.pins--
	if f.pins > 0 {
		return
	}
	delete(p.table, f.id)
	f.id = InvalidPageID
	f.dirty = false
	f.loadErr = nil
	p.free = append(p.free, f)
}

// NewPage allocates a fresh page on disk, pins it, and formats it as an
// empty slotted page.
func (p *BufferPool) NewPage() (*Frame, error) {
	id, err := p.disk.Allocate()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	f, err := p.victimLocked()
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	f.id = id
	f.pins = 1
	f.dirty = true
	f.loadErr = nil
	f.ready = readyClosed
	// Format before publishing the unlock: the frame is in the table, so a
	// hit must never observe pre-format bytes.
	InitPage(f.data[:])
	p.table[id] = f
	p.mu.Unlock()
	return f, nil
}

// lruPushBackLocked appends f as the most recently used unpinned frame.
func (p *BufferPool) lruPushBackLocked(f *Frame) {
	f.lruPrev = p.lruTail
	f.lruNext = nil
	if p.lruTail != nil {
		p.lruTail.lruNext = f
	} else {
		p.lruHead = f
	}
	p.lruTail = f
	f.inLRU = true
}

// lruRemoveLocked unlinks f from the LRU list if present.
func (p *BufferPool) lruRemoveLocked(f *Frame) {
	if !f.inLRU {
		return
	}
	if f.lruPrev != nil {
		f.lruPrev.lruNext = f.lruNext
	} else {
		p.lruHead = f.lruNext
	}
	if f.lruNext != nil {
		f.lruNext.lruPrev = f.lruPrev
	} else {
		p.lruTail = f.lruPrev
	}
	f.lruPrev, f.lruNext = nil, nil
	f.inLRU = false
}

// pinLocked pins an already-resident frame.
func (p *BufferPool) pinLocked(f *Frame) {
	if p.policy == LRU {
		p.lruRemoveLocked(f)
	} else {
		f.refBit = true
	}
	f.pins++
}

// victimLocked returns an empty frame, evicting per the configured policy.
// The returned frame is not in the page table.
func (p *BufferPool) victimLocked() (*Frame, error) {
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free = p.free[:n-1]
		return f, nil
	}
	var f *Frame
	if p.policy == LRU {
		f = p.lruHead
		if f == nil {
			return nil, fmt.Errorf("%w (%d frames)", ErrNoFreeFrames, len(p.frames))
		}
	} else {
		f = p.clockVictimLocked()
		if f == nil {
			return nil, fmt.Errorf("%w (%d frames)", ErrNoFreeFrames, len(p.frames))
		}
	}
	// Write back dirty bytes BEFORE detaching the frame from the LRU list
	// and page table: if the write fails, the pool's state is untouched —
	// the page stays resident, dirty, and evictable, instead of the frame
	// leaking out of both the table and the free list. Write back while
	// holding the lock; correct first, the pool is not the bottleneck at
	// our page sizes.
	if f.dirty {
		if err := p.disk.Write(f.id, f.data[:]); err != nil {
			return nil, err
		}
		p.stats.DirtyOut++
		f.dirty = false
	}
	if p.policy == LRU {
		p.lruRemoveLocked(f)
	}
	delete(p.table, f.id)
	p.stats.Evictions++
	f.id = InvalidPageID
	return f, nil
}

// clockVictimLocked sweeps the hand over the frames: pinned frames are
// skipped, referenced frames get their bit cleared (second chance), the
// first unpinned unreferenced frame is the victim. Two full sweeps with no
// victim means everything is pinned.
func (p *BufferPool) clockVictimLocked() *Frame {
	for sweep := 0; sweep < 2*len(p.frames); sweep++ {
		f := p.frames[p.hand]
		p.hand = (p.hand + 1) % len(p.frames)
		if f.pins > 0 || f.id == InvalidPageID {
			continue
		}
		if f.refBit {
			f.refBit = false
			continue
		}
		return f
	}
	return nil
}

// Unpin releases one pin on page id, marking the page dirty if the caller
// modified it. The page becomes evictable when its pin count reaches zero.
func (p *BufferPool) Unpin(id PageID, dirty bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.table[id]
	if !ok {
		return fmt.Errorf("storage: unpin of non-resident page %d", id)
	}
	if f.pins <= 0 {
		return fmt.Errorf("storage: unpin of unpinned page %d", id)
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
	if f.pins == 0 && p.policy == LRU {
		p.lruPushBackLocked(f)
	}
	return nil
}

// Discard drops page id from the pool without writing it back, even if
// dirty — the page's contents are being abandoned (its table was dropped).
// Discarding a pinned page is an error: a pin means someone is still
// reading it, which the caller's locking was supposed to exclude. A
// non-resident page is a no-op.
func (p *BufferPool) Discard(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.table[id]
	if !ok {
		return nil
	}
	if f.pins > 0 {
		return fmt.Errorf("storage: discard of pinned page %d (%d pins)", id, f.pins)
	}
	if p.policy == LRU {
		p.lruRemoveLocked(f)
	}
	delete(p.table, id)
	f.id = InvalidPageID
	f.dirty = false
	f.loadErr = nil
	p.free = append(p.free, f)
	return nil
}

// FreePage discards page id from the pool and returns it to the disk
// manager's free list — the reclamation step DROP TABLE runs over a heap's
// page chain. The frame is discarded first so a later reuse of the id can
// never collide with a stale resident copy.
func (p *BufferPool) FreePage(id PageID) error {
	if err := p.Discard(id); err != nil {
		return err
	}
	return p.disk.Free(id)
}

// FlushAll writes every dirty resident page back to disk.
func (p *BufferPool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, f := range p.table {
		if f.dirty {
			if err := p.disk.Write(id, f.data[:]); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}
