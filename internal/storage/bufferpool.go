package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// ErrNoFreeFrames is returned when every frame in the pool is pinned.
var ErrNoFreeFrames = errors.New("storage: all buffer frames pinned")

// Frame is a buffer-pool slot holding one page.
type Frame struct {
	id    PageID
	data  [PageSize]byte
	pins  int
	dirty bool
	// refBit marks recent use under the Clock policy.
	refBit bool
	// lruElem is the frame's position in the pool's LRU list when
	// unpinned; nil while pinned.
	lruElem *list.Element
}

// ID returns the page id currently held by the frame.
func (f *Frame) ID() PageID { return f.id }

// Data returns the frame's page bytes. Valid only while pinned.
func (f *Frame) Data() []byte { return f.data[:] }

// Page returns a slotted-page view of the frame. Valid only while pinned.
func (f *Frame) Page() *Page { return NewPage(f.data[:]) }

// PoolStats reports buffer pool activity; Evictions counts pages written
// back or dropped to make room — the disk-spilling behaviour that lets the
// relation-centric representation run tensors larger than memory.
type PoolStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	DirtyOut  uint64 // evictions that required a write-back
}

// Policy selects the pool's page-replacement algorithm.
type Policy int

// Replacement policies.
const (
	// LRU evicts the least recently unpinned page (default).
	LRU Policy = iota
	// Clock sweeps a hand over the frames, giving each referenced page a
	// second chance — cheaper bookkeeping per hit than LRU.
	Clock
)

// BufferPool caches pages in a fixed number of frames with a configurable
// replacement policy. Fetched pages are pinned and must be unpinned
// (marking dirty if modified). It is safe for concurrent use.
type BufferPool struct {
	mu     sync.Mutex
	disk   *DiskManager
	policy Policy
	frames []*Frame
	table  map[PageID]*Frame
	free   []*Frame
	lru    *list.List // of *Frame, front = least recently used (LRU policy)
	hand   int        // sweep position (Clock policy)
	stats  PoolStats
}

// NewBufferPool returns an LRU pool of n frames over disk.
func NewBufferPool(disk *DiskManager, n int) *BufferPool {
	return NewBufferPoolWithPolicy(disk, n, LRU)
}

// NewBufferPoolWithPolicy returns a pool of n frames with the given
// replacement policy.
func NewBufferPoolWithPolicy(disk *DiskManager, n int, policy Policy) *BufferPool {
	if n < 1 {
		panic("storage: buffer pool needs at least one frame")
	}
	p := &BufferPool{
		disk:   disk,
		policy: policy,
		frames: make([]*Frame, n),
		table:  make(map[PageID]*Frame, n),
		lru:    list.New(),
	}
	for i := range p.frames {
		f := &Frame{id: InvalidPageID}
		p.frames[i] = f
		p.free = append(p.free, f)
	}
	return p
}

// Size returns the number of frames.
func (p *BufferPool) Size() int { return len(p.frames) }

// Stats returns a snapshot of pool counters.
func (p *BufferPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Fetch pins page id into a frame, reading it from disk on a miss.
func (p *BufferPool) Fetch(id PageID) (*Frame, error) {
	p.mu.Lock()
	if f, ok := p.table[id]; ok {
		p.stats.Hits++
		p.pinLocked(f)
		p.mu.Unlock()
		return f, nil
	}
	p.stats.Misses++
	f, err := p.victimLocked()
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	f.id = id
	f.pins = 1
	f.dirty = false
	p.table[id] = f
	p.mu.Unlock()
	// Read outside the lock: the frame is pinned so it cannot be evicted.
	if err := p.disk.Read(id, f.data[:]); err != nil {
		p.mu.Lock()
		delete(p.table, id)
		f.id = InvalidPageID
		f.pins = 0
		p.free = append(p.free, f)
		p.mu.Unlock()
		return nil, err
	}
	return f, nil
}

// NewPage allocates a fresh page on disk, pins it, and formats it as an
// empty slotted page.
func (p *BufferPool) NewPage() (*Frame, error) {
	id, err := p.disk.Allocate()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	f, err := p.victimLocked()
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	f.id = id
	f.pins = 1
	f.dirty = true
	p.table[id] = f
	p.mu.Unlock()
	InitPage(f.data[:])
	return f, nil
}

// pinLocked pins an already-resident frame.
func (p *BufferPool) pinLocked(f *Frame) {
	if p.policy == LRU {
		if f.lruElem != nil {
			p.lru.Remove(f.lruElem)
			f.lruElem = nil
		}
	} else {
		f.refBit = true
	}
	f.pins++
}

// victimLocked returns an empty frame, evicting per the configured policy.
// The returned frame is not in the page table.
func (p *BufferPool) victimLocked() (*Frame, error) {
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free = p.free[:n-1]
		return f, nil
	}
	var f *Frame
	if p.policy == LRU {
		e := p.lru.Front()
		if e == nil {
			return nil, fmt.Errorf("%w (%d frames)", ErrNoFreeFrames, len(p.frames))
		}
		f = e.Value.(*Frame)
		p.lru.Remove(e)
		f.lruElem = nil
	} else {
		f = p.clockVictimLocked()
		if f == nil {
			return nil, fmt.Errorf("%w (%d frames)", ErrNoFreeFrames, len(p.frames))
		}
	}
	delete(p.table, f.id)
	p.stats.Evictions++
	if f.dirty {
		p.stats.DirtyOut++
		// Write back while holding the lock. Correct first: the pool is
		// not the bottleneck at our page sizes.
		if err := p.disk.Write(f.id, f.data[:]); err != nil {
			return nil, err
		}
	}
	f.id = InvalidPageID
	f.dirty = false
	return f, nil
}

// clockVictimLocked sweeps the hand over the frames: pinned frames are
// skipped, referenced frames get their bit cleared (second chance), the
// first unpinned unreferenced frame is the victim. Two full sweeps with no
// victim means everything is pinned.
func (p *BufferPool) clockVictimLocked() *Frame {
	for sweep := 0; sweep < 2*len(p.frames); sweep++ {
		f := p.frames[p.hand]
		p.hand = (p.hand + 1) % len(p.frames)
		if f.pins > 0 || f.id == InvalidPageID {
			continue
		}
		if f.refBit {
			f.refBit = false
			continue
		}
		return f
	}
	return nil
}

// Unpin releases one pin on page id, marking the page dirty if the caller
// modified it. The page becomes evictable when its pin count reaches zero.
func (p *BufferPool) Unpin(id PageID, dirty bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.table[id]
	if !ok {
		return fmt.Errorf("storage: unpin of non-resident page %d", id)
	}
	if f.pins <= 0 {
		return fmt.Errorf("storage: unpin of unpinned page %d", id)
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
	if f.pins == 0 && p.policy == LRU {
		f.lruElem = p.lru.PushBack(f)
	}
	return nil
}

// FlushAll writes every dirty resident page back to disk.
func (p *BufferPool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, f := range p.table {
		if f.dirty {
			if err := p.disk.Write(id, f.data[:]); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}
