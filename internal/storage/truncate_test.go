package storage

import (
	"bytes"
	"testing"
)

// TruncateSlots must restore the exact insert state the page had at the
// surviving slot count: re-inserting lands on the same slots and offsets.
func TestPageTruncateSlots(t *testing.T) {
	buf := make([]byte, PageSize)
	p := InitPage(buf)
	recs := [][]byte{[]byte("alpha"), []byte("bravo-longer"), []byte("c"), []byte("delta")}
	for i, r := range recs {
		slot, err := p.Insert(r)
		if err != nil || slot != i {
			t.Fatalf("insert %d: slot %d err %v", i, slot, err)
		}
	}
	freeBefore := p.FreeSpace()
	if err := p.TruncateSlots(2); err != nil {
		t.Fatalf("TruncateSlots: %v", err)
	}
	if p.NumSlots() != 2 {
		t.Fatalf("slots %d after truncate, want 2", p.NumSlots())
	}
	for i := 0; i < 2; i++ {
		rec, ok, err := p.Record(i)
		if err != nil || !ok || !bytes.Equal(rec, recs[i]) {
			t.Fatalf("slot %d after truncate: %q ok=%v err=%v", i, rec, ok, err)
		}
	}
	if _, ok, _ := p.Record(2); ok {
		t.Fatal("truncated slot still readable")
	}
	// Re-inserting the same records restores the identical layout.
	for i, r := range recs[2:] {
		slot, err := p.Insert(r)
		if err != nil || slot != 2+i {
			t.Fatalf("re-insert %d: slot %d err %v", i, slot, err)
		}
	}
	if p.FreeSpace() != freeBefore {
		t.Fatalf("free space %d after re-insert, want %d", p.FreeSpace(), freeBefore)
	}
	for i, r := range recs {
		rec, ok, err := p.Record(i)
		if err != nil || !ok || !bytes.Equal(rec, r) {
			t.Fatalf("slot %d after re-insert: %q ok=%v err=%v", i, rec, ok, err)
		}
	}
}

// Truncating past a deleted tail slot recovers the free end from the
// deepest surviving live record.
func TestPageTruncateSlotsSkipsDeleted(t *testing.T) {
	buf := make([]byte, PageSize)
	p := InitPage(buf)
	for _, r := range [][]byte{[]byte("aa"), []byte("bb"), []byte("cc")} {
		if _, err := p.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Delete(1) {
		t.Fatal("delete slot 1")
	}
	if err := p.TruncateSlots(2); err != nil {
		t.Fatal(err)
	}
	// Slot 0 survives; slot 1 stays deleted; inserts continue below slot 0's
	// record (slot 1's dead bytes are reclaimed space).
	if rec, ok, _ := p.Record(0); !ok || !bytes.Equal(rec, []byte("aa")) {
		t.Fatalf("slot 0 damaged: %q ok=%v", rec, ok)
	}
	slot, err := p.Insert([]byte("dd"))
	if err != nil || slot != 2 {
		t.Fatalf("insert after truncate: slot %d err %v", slot, err)
	}
	if rec, ok, _ := p.Record(2); !ok || !bytes.Equal(rec, []byte("dd")) {
		t.Fatalf("new record damaged: %q ok=%v", rec, ok)
	}

	if err := p.TruncateSlots(4); err == nil {
		t.Fatal("truncate beyond slot count must fail")
	}
	if err := p.TruncateSlots(0); err != nil {
		t.Fatal(err)
	}
	if p.NumSlots() != 0 || p.FreeSpace() != MaxRecordSize {
		t.Fatalf("empty truncate: slots %d free %d", p.NumSlots(), p.FreeSpace())
	}
}
