package storage

import (
	"errors"
	"testing"

	"tensorbase/internal/fault"
)

func TestFreeListReuse(t *testing.T) {
	d := newDisk(t)
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, err := d.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if n := d.NumPages(); n != 4 {
		t.Fatalf("numPages = %d, want 4", n)
	}
	// Write recognisable bytes into page 1, then free it.
	buf := make([]byte, PageSize)
	buf[0] = 0xEE
	if err := d.Write(ids[1], buf); err != nil {
		t.Fatal(err)
	}
	if err := d.Free(ids[1]); err != nil {
		t.Fatal(err)
	}
	if _, _, free := func() (uint64, uint64, int) { return d.FreeStats() }(); free != 1 {
		t.Fatalf("free-list length = %d, want 1", free)
	}
	// The next allocation must reuse the freed page, zeroed, without
	// growing the file.
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id != ids[1] {
		t.Fatalf("reallocated page %d, want reuse of %d", id, ids[1])
	}
	if n := d.NumPages(); n != 4 {
		t.Fatalf("numPages grew to %d on reuse", n)
	}
	in := make([]byte, PageSize)
	if err := d.Read(id, in); err != nil {
		t.Fatal(err)
	}
	for i, b := range in {
		if b != 0 {
			t.Fatalf("reused page not zeroed at byte %d", i)
		}
	}
	frees, reuses, free := d.FreeStats()
	if frees != 1 || reuses != 1 || free != 0 {
		t.Fatalf("FreeStats = (%d, %d, %d), want (1, 1, 0)", frees, reuses, free)
	}
}

func TestFreeRejectsDoubleAndOutOfRange(t *testing.T) {
	d := newDisk(t)
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Free(PageID(99)); err == nil {
		t.Fatal("free beyond end must error")
	}
	if err := d.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := d.Free(id); err == nil {
		t.Fatal("double free must error")
	}
}

func TestFreedPageRejectsIO(t *testing.T) {
	d := newDisk(t)
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Free(id); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := d.Read(id, buf); err == nil {
		t.Fatal("read of freed page must error")
	}
	if err := d.Write(id, buf); err == nil {
		t.Fatal("write of freed page must error")
	}
}

func TestFreeListRestore(t *testing.T) {
	d := newDisk(t)
	for i := 0; i < 3; i++ {
		if _, err := d.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.RestoreFreeList([]PageID{1, 2}); err != nil {
		t.Fatal(err)
	}
	got := d.FreeList()
	if len(got) != 2 {
		t.Fatalf("free list = %v", got)
	}
	// Restored entries are allocatable.
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 && id != 1 {
		t.Fatalf("allocation ignored restored free list: got page %d", id)
	}
	if n := d.NumPages(); n != 3 {
		t.Fatalf("numPages grew to %d with free pages available", n)
	}
	// Invalid restores are rejected.
	if err := d.RestoreFreeList([]PageID{7}); err == nil {
		t.Fatal("out-of-range restore must error")
	}
	if err := d.RestoreFreeList([]PageID{0, 0}); err == nil {
		t.Fatal("duplicate restore must error")
	}
}

func TestFreeFaultInjected(t *testing.T) {
	d := newDisk(t)
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New()
	boom := errors.New("boom")
	inj.FailAt("disk.free", boom, 1)
	d.SetFaults(inj)
	if err := d.Free(id); !errors.Is(err, boom) {
		t.Fatalf("Free error = %v, want injected fault", err)
	}
	// The failed free must not have put the page on the list.
	if _, _, free := d.FreeStats(); free != 0 {
		t.Fatalf("free-list length after failed free = %d, want 0", free)
	}
	// Retry succeeds once the fault clears.
	if err := d.Free(id); err != nil {
		t.Fatal(err)
	}
}

func TestReuseZeroFaultLeavesListIntact(t *testing.T) {
	d := newDisk(t)
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Free(id); err != nil {
		t.Fatal(err)
	}
	inj := fault.New()
	boom := errors.New("boom")
	// Allocate's reuse path zeroes via the file write; fail the alloc
	// fault point to prove the list is untouched on failure.
	inj.FailAt("disk.alloc", boom, 1)
	d.SetFaults(inj)
	if _, err := d.Allocate(); !errors.Is(err, boom) {
		t.Fatalf("Allocate error = %v, want injected fault", err)
	}
	if _, _, free := d.FreeStats(); free != 1 {
		t.Fatalf("free-list length after failed realloc = %d, want 1", free)
	}
	got, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if got != id {
		t.Fatalf("retry allocated %d, want %d", got, id)
	}
}

func TestPoolDiscardAndFreePage(t *testing.T) {
	d := newDisk(t)
	p := NewBufferPool(d, 4)
	f, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	// Discarding while pinned must fail.
	if err := p.Discard(id); err == nil {
		t.Fatal("discard of pinned page must error")
	}
	if err := p.Unpin(id, true); err != nil {
		t.Fatal(err)
	}
	// FreePage drops the dirty frame without write-back and frees the id.
	if err := p.FreePage(id); err != nil {
		t.Fatal(err)
	}
	if _, _, free := d.FreeStats(); free != 1 {
		t.Fatalf("free-list length = %d, want 1", free)
	}
	// The id comes back zeroed through NewPage (reuse) with no stale
	// resident frame shadowing it.
	nf, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	if nf.ID() != id {
		t.Fatalf("NewPage allocated %d, want reuse of %d", nf.ID(), id)
	}
	if got := nf.Page().NumSlots(); got != 0 {
		t.Fatalf("reused page has %d slots, want 0", got)
	}
	if err := p.Unpin(nf.ID(), true); err != nil {
		t.Fatal(err)
	}
	// Discard of a non-resident page is a no-op.
	if err := p.Discard(PageID(3)); err != nil {
		t.Fatal(err)
	}
}
