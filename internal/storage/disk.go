// Package storage implements the paged storage layer of the database:
// a disk manager over a single file, slotted record pages, and a pinning
// buffer pool with LRU replacement. This is the substrate that gives the
// relation-centric execution path its headline property from the paper —
// tensor blocks that exceed memory spill to disk through the buffer pool
// instead of failing with an out-of-memory error.
//
// Failure model: every page carries a CRC32-C checksum over its payload,
// stamped on write and verified on read, so a bit flip on disk surfaces as
// ErrChecksum instead of silently corrupting a tensor block or record. All
// I/O errors (including short reads of a page that should exist) are
// returned to the caller; nothing in this package panics on the state of
// the disk. The fault points wired through fault.Injector ("disk.read",
// "disk.read.short", "disk.corrupt", "disk.write", "disk.sync",
// "disk.alloc", "disk.free") let tests drive those paths deterministically.
package storage

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"tensorbase/internal/fault"
)

// PageSize is the fixed page size in bytes. It is sized so that one 64×64
// float32 tensor block (16 KiB) fits in a single slotted-page record, which
// keeps the relation-centric block relations one-record-per-block.
const PageSize = 32768

// checksumSize is the page tail reserved for the disk-level CRC32-C. The
// slotted-page layout never places records there (InitPage starts the
// record region at PageSize-checksumSize), so the disk manager owns those
// bytes.
const checksumSize = 4

// ErrChecksum is returned when a page read from disk fails checksum
// verification — on-disk corruption caught before the bytes are used.
var ErrChecksum = errors.New("storage: page checksum mismatch")

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// PageID identifies a page within a database file.
type PageID uint32

// InvalidPageID is the zero-like sentinel for "no page".
const InvalidPageID = PageID(^uint32(0))

// DiskManager reads and writes fixed-size pages of a database file.
// It is safe for concurrent use.
//
// Freed pages (DROP TABLE reclaiming a heap's chain) go on a free list that
// Allocate consults before growing the file, so dropped tables stop leaking
// disk space. The list itself lives in memory; the engine persists it in
// the catalog meta file (FreeList / RestoreFreeList), which commits it
// atomically with the table set it must stay consistent with.
type DiskManager struct {
	mu       sync.Mutex
	file     *os.File
	numPages uint32
	writes   uint64
	reads    uint64
	frees    uint64
	reuses   uint64
	// freeList holds reclaimable page ids; freeSet mirrors it for O(1)
	// double-free detection.
	freeList []PageID
	freeSet  map[PageID]struct{}
	faults   *fault.Injector
}

// OpenDisk opens (creating if necessary) the database file at path.
func OpenDisk(path string) (*DiskManager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s size %d is not a multiple of the page size", path, st.Size())
	}
	return &DiskManager{
		file:     f,
		numPages: uint32(st.Size() / PageSize),
		freeSet:  make(map[PageID]struct{}),
	}, nil
}

// SetFaults installs a fault injector (nil disables injection). Intended
// for tests; not synchronised against in-flight I/O.
func (d *DiskManager) SetFaults(inj *fault.Injector) { d.faults = inj }

// Allocate returns a zeroed page: a reclaimed one from the free list when
// available, else a fresh page appended to the file. A zeroed page is
// exempt from checksum verification (it has never carried data), so the
// page is valid to read back immediately.
func (d *DiskManager) Allocate() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.faults.Check("disk.alloc"); err != nil {
		return InvalidPageID, fmt.Errorf("storage: allocate page %d: %w", d.numPages, err)
	}
	var zero [PageSize]byte
	if n := len(d.freeList); n > 0 {
		id := d.freeList[n-1]
		// Zero the reused page before handing it out so its stale bytes
		// (and stale checksum) can never be read back as live data. Only
		// on success is the page actually taken off the list.
		if _, err := d.file.WriteAt(zero[:], int64(id)*PageSize); err != nil {
			return InvalidPageID, fmt.Errorf("storage: reallocate page %d: %w", id, err)
		}
		d.freeList = d.freeList[:n-1]
		delete(d.freeSet, id)
		d.reuses++
		return id, nil
	}
	id := PageID(d.numPages)
	if _, err := d.file.WriteAt(zero[:], int64(id)*PageSize); err != nil {
		return InvalidPageID, fmt.Errorf("storage: allocate page %d: %w", id, err)
	}
	d.numPages++
	return id, nil
}

// Free returns page id to the free list for reuse by a later Allocate.
// Freeing a page beyond the file or freeing it twice is an error — both
// indicate a corrupted page chain in the caller. The fault point
// "disk.free" lets tests fail the path deterministically.
func (d *DiskManager) Free(id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.faults.Check("disk.free"); err != nil {
		return fmt.Errorf("storage: free page %d: %w", id, err)
	}
	if uint32(id) >= d.numPages {
		return fmt.Errorf("storage: free of page %d beyond end (%d pages)", id, d.numPages)
	}
	if _, dup := d.freeSet[id]; dup {
		return fmt.Errorf("storage: double free of page %d", id)
	}
	d.freeList = append(d.freeList, id)
	d.freeSet[id] = struct{}{}
	d.frees++
	return nil
}

// FreeList returns a snapshot of the reclaimable page ids (for the engine
// to persist alongside the catalog).
func (d *DiskManager) FreeList() []PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]PageID, len(d.freeList))
	copy(out, d.freeList)
	return out
}

// RestoreFreeList installs a persisted free list on a freshly opened disk,
// replacing the current one. Out-of-range or duplicate ids are rejected.
func (d *DiskManager) RestoreFreeList(ids []PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	list := make([]PageID, 0, len(ids))
	set := make(map[PageID]struct{}, len(ids))
	for _, id := range ids {
		if uint32(id) >= d.numPages {
			return fmt.Errorf("storage: free list references page %d beyond end (%d pages)", id, d.numPages)
		}
		if _, dup := set[id]; dup {
			return fmt.Errorf("storage: free list lists page %d twice", id)
		}
		list = append(list, id)
		set[id] = struct{}{}
	}
	d.freeList = list
	d.freeSet = set
	return nil
}

// FreeStats returns cumulative frees and free-list reuses, plus the
// current free-list length.
func (d *DiskManager) FreeStats() (frees, reuses uint64, free int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.frees, d.reuses, len(d.freeList)
}

// Read fills buf (length PageSize) with page id's contents, verifying the
// page checksum. A short read of a page that should exist is an error, not
// a silent partial fill.
func (d *DiskManager) Read(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("storage: read buffer is %d bytes, want %d", len(buf), PageSize)
	}
	d.mu.Lock()
	if uint32(id) >= d.numPages {
		n := d.numPages
		d.mu.Unlock()
		return fmt.Errorf("storage: read of page %d beyond end (%d pages)", id, n)
	}
	if _, freed := d.freeSet[id]; freed {
		d.mu.Unlock()
		return fmt.Errorf("storage: read of freed page %d", id)
	}
	d.reads++
	d.mu.Unlock()
	if err := d.faults.Check("disk.read"); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	n, err := d.file.ReadAt(buf, int64(id)*PageSize)
	if ferr := d.faults.Check("disk.read.short"); ferr != nil {
		// Simulate a truncated file: half a page arrived, the rest is gone.
		n = PageSize / 2
		clear(buf[n:])
		err = io.EOF
	}
	if n < PageSize {
		// The page is inside the file per numPages, so a short read means
		// the file was truncated underneath us (or the device failed
		// mid-read). Never hand back partial bytes as a full page.
		if err == nil || errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("storage: read page %d: %d of %d bytes: %w", id, n, PageSize, err)
	}
	if err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	d.faults.CheckData("disk.corrupt", buf) // deterministic bit flips, caught below
	if !verifyPage(buf) {
		return fmt.Errorf("%w (page %d)", ErrChecksum, id)
	}
	return nil
}

// Write stores buf (length PageSize) as page id's contents, stamping the
// page checksum into the reserved tail bytes of buf.
func (d *DiskManager) Write(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("storage: write buffer is %d bytes, want %d", len(buf), PageSize)
	}
	d.mu.Lock()
	if uint32(id) >= d.numPages {
		n := d.numPages
		d.mu.Unlock()
		return fmt.Errorf("storage: write of page %d beyond end (%d pages)", id, n)
	}
	if _, freed := d.freeSet[id]; freed {
		d.mu.Unlock()
		return fmt.Errorf("storage: write of freed page %d", id)
	}
	d.writes++
	d.mu.Unlock()
	if err := d.faults.Check("disk.write"); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	stampPage(buf)
	if _, err := d.file.WriteAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// stampPage computes the payload checksum and stores it in the page tail.
func stampPage(buf []byte) {
	sum := crc32.Checksum(buf[:PageSize-checksumSize], castagnoli)
	buf[PageSize-4] = byte(sum)
	buf[PageSize-3] = byte(sum >> 8)
	buf[PageSize-2] = byte(sum >> 16)
	buf[PageSize-1] = byte(sum >> 24)
}

// verifyPage checks the stored checksum. An all-zero page (freshly
// allocated, never written) is valid by definition — the zero check only
// runs on the mismatch path, so verified reads stay one CRC pass.
func verifyPage(buf []byte) bool {
	stored := uint32(buf[PageSize-4]) | uint32(buf[PageSize-3])<<8 |
		uint32(buf[PageSize-2])<<16 | uint32(buf[PageSize-1])<<24
	if crc32.Checksum(buf[:PageSize-checksumSize], castagnoli) == stored {
		return true
	}
	for _, b := range buf {
		if b != 0 {
			return false
		}
	}
	return true
}

// NumPages returns the number of allocated pages.
func (d *DiskManager) NumPages() uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.numPages
}

// IOStats returns cumulative page reads and writes.
func (d *DiskManager) IOStats() (reads, writes uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.writes
}

// Sync flushes the file to stable storage.
func (d *DiskManager) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncLocked()
}

func (d *DiskManager) syncLocked() error {
	if err := d.faults.Check("disk.sync"); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	if err := d.file.Sync(); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	return nil
}

// Close syncs and closes the underlying file. The file is closed even when
// the sync fails, and the sync error is reported.
func (d *DiskManager) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.syncLocked(); err != nil {
		d.file.Close()
		return err
	}
	return d.file.Close()
}
