// Package storage implements the paged storage layer of the database:
// a disk manager over a single file, slotted record pages, and a pinning
// buffer pool with LRU replacement. This is the substrate that gives the
// relation-centric execution path its headline property from the paper —
// tensor blocks that exceed memory spill to disk through the buffer pool
// instead of failing with an out-of-memory error.
package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// PageSize is the fixed page size in bytes. It is sized so that one 64×64
// float32 tensor block (16 KiB) fits in a single slotted-page record, which
// keeps the relation-centric block relations one-record-per-block.
const PageSize = 32768

// PageID identifies a page within a database file.
type PageID uint32

// InvalidPageID is the zero-like sentinel for "no page".
const InvalidPageID = PageID(^uint32(0))

// DiskManager reads and writes fixed-size pages of a database file.
// It is safe for concurrent use.
type DiskManager struct {
	mu       sync.Mutex
	file     *os.File
	numPages uint32
	writes   uint64
	reads    uint64
}

// OpenDisk opens (creating if necessary) the database file at path.
func OpenDisk(path string) (*DiskManager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s size %d is not a multiple of the page size", path, st.Size())
	}
	return &DiskManager{file: f, numPages: uint32(st.Size() / PageSize)}, nil
}

// Allocate appends a zeroed page and returns its id.
func (d *DiskManager) Allocate() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := PageID(d.numPages)
	var zero [PageSize]byte
	if _, err := d.file.WriteAt(zero[:], int64(id)*PageSize); err != nil {
		return InvalidPageID, fmt.Errorf("storage: allocate page %d: %w", id, err)
	}
	d.numPages++
	return id, nil
}

// Read fills buf (length PageSize) with page id's contents.
func (d *DiskManager) Read(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("storage: read buffer is %d bytes, want %d", len(buf), PageSize)
	}
	d.mu.Lock()
	if uint32(id) >= d.numPages {
		n := d.numPages
		d.mu.Unlock()
		return fmt.Errorf("storage: read of page %d beyond end (%d pages)", id, n)
	}
	d.reads++
	d.mu.Unlock()
	if _, err := d.file.ReadAt(buf, int64(id)*PageSize); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

// Write stores buf (length PageSize) as page id's contents.
func (d *DiskManager) Write(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("storage: write buffer is %d bytes, want %d", len(buf), PageSize)
	}
	d.mu.Lock()
	if uint32(id) >= d.numPages {
		n := d.numPages
		d.mu.Unlock()
		return fmt.Errorf("storage: write of page %d beyond end (%d pages)", id, n)
	}
	d.writes++
	d.mu.Unlock()
	if _, err := d.file.WriteAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// NumPages returns the number of allocated pages.
func (d *DiskManager) NumPages() uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.numPages
}

// IOStats returns cumulative page reads and writes.
func (d *DiskManager) IOStats() (reads, writes uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.writes
}

// Close syncs and closes the underlying file.
func (d *DiskManager) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.file.Sync(); err != nil {
		d.file.Close()
		return fmt.Errorf("storage: sync: %w", err)
	}
	return d.file.Close()
}
