package storage

import (
	"errors"
	"io"
	"path/filepath"
	"testing"

	"tensorbase/internal/fault"
)

// newFaultyPool returns a disk with an installed injector and a pool over it.
func newFaultyPool(t *testing.T, frames int) (*DiskManager, *BufferPool, *fault.Injector) {
	t.Helper()
	d, err := OpenDisk(filepath.Join(t.TempDir(), "fault.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	inj := fault.New()
	d.SetFaults(inj)
	return d, NewBufferPool(d, frames), inj
}

// fillPages allocates n pages through the pool, stamping each with its id.
func fillPages(t *testing.T, d *DiskManager, p *BufferPool, n int) []PageID {
	t.Helper()
	ids := make([]PageID, n)
	for i := range ids {
		id, err := d.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		f, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		f.Data()[0] = byte(id)
		p.Unpin(id, true)
		ids[i] = id
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	return ids
}

func TestFaultReadErrorSurfacesAndLeavesNoPins(t *testing.T) {
	errIO := errors.New("simulated media error")
	d, p, inj := newFaultyPool(t, 2)
	ids := fillPages(t, d, p, 4) // more pages than frames, so fetches miss

	inj.Reset() // count occurrences from here, not from setup I/O
	inj.FailAt("disk.read", errIO, 1)
	if _, err := p.Fetch(ids[0]); !errors.Is(err, errIO) {
		t.Fatalf("err = %v, want injected read fault", err)
	}
	if got := p.Pinned(); got != 0 {
		t.Fatalf("pinned frames after failed fetch = %d, want 0", got)
	}
	// The schedule is spent: the same fetch now succeeds.
	f, err := p.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if f.Data()[0] != byte(ids[0]) {
		t.Fatalf("page content %d after recovery", f.Data()[0])
	}
	p.Unpin(ids[0], false)
}

func TestFaultShortReadSurfaces(t *testing.T) {
	d, p, inj := newFaultyPool(t, 2)
	ids := fillPages(t, d, p, 4)

	inj.Reset()
	inj.FailAt("disk.read.short", errors.New("unused"), 1)
	_, err := p.Fetch(ids[0])
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF for a short read", err)
	}
	if got := p.Pinned(); got != 0 {
		t.Fatalf("pinned frames = %d, want 0", got)
	}
}

func TestFaultBitFlipCaughtByChecksum(t *testing.T) {
	d, p, inj := newFaultyPool(t, 2)
	ids := fillPages(t, d, p, 4)

	inj.Reset()
	inj.CorruptAt("disk.corrupt", 1)
	_, err := p.Fetch(ids[0])
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum for a flipped bit", err)
	}
	if inj.Fired("disk.corrupt") != 1 {
		t.Fatalf("corruption did not fire")
	}
	if got := p.Pinned(); got != 0 {
		t.Fatalf("pinned frames = %d, want 0", got)
	}
}

func TestFaultWriteErrorDuringEvictionKeepsPageResident(t *testing.T) {
	errIO := errors.New("write failed")
	d, p, inj := newFaultyPool(t, 2)
	ids := fillPages(t, d, p, 2)

	// Dirty a resident page, then force an eviction whose write-back fails.
	f, err := p.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[1] = 0xAB
	p.Unpin(ids[0], true)
	// Touch the clean page so the dirty one is the LRU victim.
	if _, err := p.Fetch(ids[1]); err != nil {
		t.Fatal(err)
	}
	p.Unpin(ids[1], false)

	extra, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	inj.FailAfter("disk.write", errIO, 1)
	// Eviction of some dirty victim must surface the write error...
	if _, err := p.Fetch(extra); !errors.Is(err, errIO) {
		t.Fatalf("err = %v, want injected write fault", err)
	}
	if got := p.Pinned(); got != 0 {
		t.Fatalf("pinned frames = %d, want 0", got)
	}
	// ...and once writes heal, the dirtied data must still be reachable:
	// the failed eviction may not have dropped the page or its bytes.
	inj.Clear("disk.write")
	f, err = p.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if f.Data()[1] != 0xAB {
		t.Fatalf("dirty byte lost across failed eviction: %x", f.Data()[1])
	}
	p.Unpin(ids[0], false)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultFlushAllSurfacesWriteError(t *testing.T) {
	errIO := errors.New("flush failed")
	d, p, inj := newFaultyPool(t, 4)
	ids := fillPages(t, d, p, 2)

	f, err := p.Fetch(ids[1])
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[2] = 7
	p.Unpin(ids[1], true)

	inj.FailAfter("disk.write", errIO, 1)
	if err := p.FlushAll(); !errors.Is(err, errIO) {
		t.Fatalf("FlushAll err = %v, want injected write fault", err)
	}
	inj.Clear("disk.write")
	if err := p.FlushAll(); err != nil {
		t.Fatalf("FlushAll after heal: %v", err)
	}
}

func TestFaultSyncErrorSurfacesOnClose(t *testing.T) {
	errIO := errors.New("sync failed")
	d, err := OpenDisk(filepath.Join(t.TempDir(), "sync.db"))
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New()
	d.SetFaults(inj)
	inj.FailAt("disk.sync", errIO, 1)
	if err := d.Close(); !errors.Is(err, errIO) {
		t.Fatalf("Close err = %v, want injected sync fault", err)
	}
}

func TestFaultAllocateErrorSurfaces(t *testing.T) {
	errIO := errors.New("no space")
	d, _, inj := newFaultyPool(t, 2)
	inj.FailAt("disk.alloc", errIO, 1)
	if _, err := d.Allocate(); !errors.Is(err, errIO) {
		t.Fatalf("Allocate err = %v, want injected fault", err)
	}
	if _, err := d.Allocate(); err != nil {
		t.Fatalf("Allocate after schedule spent: %v", err)
	}
}

// TestFaultSeededReadSoak drives a reproducible random fault schedule
// through heavy fetch/evict churn: every operation either succeeds or
// returns the injected error, the pool never loses track of a frame, and a
// final healed pass reads every page back intact.
func TestFaultSeededReadSoak(t *testing.T) {
	errIO := errors.New("soak read error")
	d, p, inj := newFaultyPool(t, 4)
	ids := fillPages(t, d, p, 16)

	inj.Reset()
	inj.FailSeeded("disk.read", errIO, 42, 0.2)
	injected := 0
	for round := 0; round < 20; round++ {
		for _, id := range ids {
			f, err := p.Fetch(id)
			if err != nil {
				if !errors.Is(err, errIO) {
					t.Fatalf("unexpected error %v", err)
				}
				injected++
				continue
			}
			if f.Data()[0] != byte(id) {
				t.Fatalf("page %d content %d", id, f.Data()[0])
			}
			p.Unpin(id, false)
		}
	}
	if injected == 0 {
		t.Fatal("seeded schedule injected nothing; seed or probability broken")
	}
	if got := p.Pinned(); got != 0 {
		t.Fatalf("pinned frames after soak = %d, want 0", got)
	}
	inj.Clear("disk.read")
	for _, id := range ids {
		f, err := p.Fetch(id)
		if err != nil {
			t.Fatalf("healed fetch of %d: %v", id, err)
		}
		if f.Data()[0] != byte(id) {
			t.Fatalf("page %d content %d after soak", id, f.Data()[0])
		}
		p.Unpin(id, false)
	}
}
