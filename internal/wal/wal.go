// Package wal is the write-ahead log behind the lock-free serving path:
// an append-only redo log of tuple and catalog mutations, CRC-framed like
// the connector wire protocol, with group commit (one fsync absorbs every
// commit that arrived while the previous fsync was in flight) and
// replay-on-open recovery.
//
// The engine's commit protocol (see internal/engine) writes each
// statement's records under its commit sequence number (CSN), then appends
// a commit record and calls Commit, which batches the fsync. Recovery
// replays the longest valid prefix of the log: a torn or corrupt frame ends
// the prefix, so a crash mid-append can lose the uncommitted tail but never
// yields a half-applied record — prefix consistency is the contract.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"tensorbase/internal/fault"
)

// Fault points, in the order a record travels through the log. Tests
// schedule crashes and corruption here (see internal/fault).
const (
	FPAppend   = "wal.append"   // before the frame is written
	FPFrame    = "wal.frame"    // corrupts the encoded frame bytes
	FPSync     = "wal.sync"     // before the group-commit fsync
	FPReplay   = "wal.replay"   // before each frame is decoded at replay
	FPTruncate = "wal.truncate" // before the checkpoint truncation
)

// FaultPoints lists every fault point the log visits, in order — the crash
// matrix iterates it so a new step cannot be added without coverage.
var FaultPoints = []string{FPAppend, FPFrame, FPSync, FPReplay, FPTruncate}

// RecType discriminates log records.
type RecType uint8

const (
	// RecInsert is one tuple appended to a table, carrying the encoded
	// tuple payload (without the heap's MVCC version header — the CSN in
	// the record is the version).
	RecInsert RecType = 1
	// RecCommit marks every record of its CSN durable and atomic: replay
	// applies a CSN's records only if its commit record is in the prefix.
	RecCommit RecType = 2
	// RecCreateTable records a new table and its schema.
	RecCreateTable RecType = 3
	// RecDropTable records a table drop.
	RecDropTable RecType = 4
	// RecLoadModel records a model registration. Data carries the model's
	// block manifest (TBMF); the weight blocks themselves ride as RecBlock
	// records in the same commit group (File is the legacy pre-blockstore
	// weight-file path, kept for old logs).
	RecLoadModel RecType = 5
	// RecBlock carries one content-addressed weight block's raw payload
	// (little-endian f32 bytes, at most 64 KiB). Blocks are staged into
	// the block store at replay; the manifest in the group's RecLoadModel
	// references them by content hash.
	RecBlock RecType = 6
	// RecDropModel records a model drop; the model's block references are
	// released and unshared blocks are reclaimed.
	RecDropModel RecType = 7
)

// Col is a schema column inside a RecCreateTable record.
type Col struct {
	Name string
	Type uint8
}

// Record is one logical WAL record (a union over the record types; unused
// fields are zero).
type Record struct {
	Type  RecType
	CSN   uint64
	Table string // Insert, CreateTable, DropTable
	Data  []byte // Insert: tuple payload; LoadModel: manifest; Block: payload
	Cols  []Col  // CreateTable
	Model string // LoadModel, DropModel
	File  string // LoadModel: legacy model weight file path
	Acc   float64
}

// Stats are the log's cumulative counters, exported as metrics: Commits
// per Sync is the group-commit occupancy.
type Stats struct {
	Appends   uint64 // records appended
	Bytes     uint64 // bytes appended (frames, including headers)
	Syncs     uint64 // fsyncs issued
	SyncWaits uint64 // commits that rode another commit's fsync
	Commits   uint64 // commit records made durable
	Replayed  uint64 // records decoded during Replay
	Truncates uint64 // checkpoint truncations
}

// frame layout: u32 length of (type+payload) | type | payload | u32 CRC32-C
// over (type+payload). A length of 0 or beyond maxFrame ends the replay
// prefix, as does a CRC mismatch or a short read.
const (
	frameOverhead = 4 + 4 // length prefix + CRC tail
	// maxFrame bounds one record: a tuple is at most a 32KiB page, schemas
	// and names are tiny. Anything larger in the length field is damage.
	maxFrame = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Log is the append-only redo log. Append/Commit are safe for concurrent
// use; Truncate requires the caller to have quiesced writers (the engine's
// checkpoint holds every table lock).
type Log struct {
	mu     sync.Mutex // serialises appends and file-offset state
	f      *os.File
	path   string
	faults *fault.Injector
	closed bool
	// appendLSN is the byte offset past the last appended frame; broken is
	// set when a failed append could not be rolled back, poisoning the log.
	appendLSN uint64
	broken    error

	// Group commit: the first committer through becomes the leader and
	// fsyncs everything appended so far; commits arriving while the fsync
	// is in flight wait and are covered by the next leader's fsync.
	syncMu    sync.Mutex
	syncCond  *sync.Cond
	syncedLSN uint64
	syncing   bool
	// syncDelay widens the leader's batching window (tests only).
	syncDelay time.Duration

	appends   atomic.Uint64
	bytes     atomic.Uint64
	syncs     atomic.Uint64
	syncWaits atomic.Uint64
	commits   atomic.Uint64
	replayed  atomic.Uint64
	truncates atomic.Uint64
}

// Open opens (creating if absent) the log at path and truncates any torn
// tail left by a crash, so the log ends at the last whole valid frame.
// The injector may be nil.
func Open(path string, inj *fault.Injector) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	l := &Log{f: f, path: path, faults: inj}
	l.syncCond = sync.NewCond(&l.syncMu)
	valid, err := l.scanValidPrefix()
	if err != nil {
		f.Close()
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: stat %s: %w", path, err)
	}
	if uint64(st.Size()) > valid {
		// Torn tail from a crash mid-append: cut it so future appends
		// always extend a valid prefix.
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: syncing %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seeking %s: %w", path, err)
	}
	l.appendLSN = valid
	l.syncedLSN = valid
	return l, nil
}

// scanValidPrefix walks frames from the start and returns the byte length
// of the longest prefix of whole, CRC-valid frames.
func (l *Log) scanValidPrefix() (uint64, error) {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("wal: seeking %s: %w", l.path, err)
	}
	r := bufio.NewReader(l.f)
	var valid uint64
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return valid, nil // clean EOF or torn length prefix
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n == 0 || n > maxFrame {
			return valid, nil
		}
		body := make([]byte, n+4)
		if _, err := io.ReadFull(r, body); err != nil {
			return valid, nil // torn frame
		}
		sum := binary.LittleEndian.Uint32(body[n:])
		if crc32.Checksum(body[:n], castagnoli) != sum {
			return valid, nil // corrupt frame ends the prefix
		}
		if _, err := decodeRecord(body[:n]); err != nil {
			return valid, nil // structurally invalid record
		}
		valid += uint64(frameOverhead) + uint64(n)
	}
}

// Replay streams every record in the valid prefix, in append order, to fn.
// It is called once at recovery, before any concurrent use of the log.
func (l *Log) Replay(fn func(*Record) error) error {
	pos, err := l.f.Seek(0, io.SeekStart)
	if err != nil || pos != 0 {
		return fmt.Errorf("wal: seeking %s: %w", l.path, err)
	}
	defer l.f.Seek(int64(l.appendLSN), io.SeekStart)
	r := bufio.NewReader(io.LimitReader(l.f, int64(l.appendLSN)))
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("wal: replay read: %w", err)
		}
		if err := l.faults.Check(FPReplay); err != nil {
			return err
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		body := make([]byte, n+4)
		if _, err := io.ReadFull(r, body); err != nil {
			return fmt.Errorf("wal: replay read: %w", err)
		}
		if crc32.Checksum(body[:n], castagnoli) != binary.LittleEndian.Uint32(body[n:]) {
			return fmt.Errorf("wal: replay CRC mismatch inside valid prefix")
		}
		rec, err := decodeRecord(body[:n])
		if err != nil {
			return fmt.Errorf("wal: replay decode: %w", err)
		}
		l.replayed.Add(1)
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// Append encodes rec as one frame and writes it at the log tail, returning
// the LSN (byte offset) past the frame — the argument for Sync. The frame
// is in the OS page cache only; it is durable after Sync covers its LSN.
func (l *Log) Append(rec *Record) (uint64, error) {
	payload := encodeRecord(rec)
	frame := make([]byte, 0, frameOverhead+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.broken != nil {
		return 0, l.broken
	}
	if err := l.faults.Check(FPAppend); err != nil {
		return 0, err
	}
	// Corruption scheduled here damages the frame in flight — recovery must
	// stop at it, proving the CRC framing catches torn/bit-rotted appends.
	if err := l.faults.CheckData(FPFrame, frame); err != nil {
		return 0, err
	}
	n, err := l.f.Write(frame)
	if err != nil || n != len(frame) {
		// Roll the file back to the last whole frame so later appends do
		// not land after garbage; if that fails the log is unusable.
		if terr := l.f.Truncate(int64(l.appendLSN)); terr != nil {
			l.broken = fmt.Errorf("wal: append failed and tail rollback failed: %v (append: %v)", terr, err)
		} else {
			l.f.Seek(int64(l.appendLSN), io.SeekStart)
		}
		if err == nil {
			err = io.ErrShortWrite
		}
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.appendLSN += uint64(len(frame))
	l.appends.Add(1)
	l.bytes.Add(uint64(len(frame)))
	return l.appendLSN, nil
}

// Sync makes every frame up to lsn durable. Concurrent callers batch: one
// becomes the leader and fsyncs the whole appended tail; the rest wait and
// usually find their LSN covered when the leader finishes (group commit).
func (l *Log) Sync(lsn uint64) error {
	l.syncMu.Lock()
	waited := false
	for {
		if l.syncedLSN >= lsn {
			l.syncMu.Unlock()
			if waited {
				l.syncWaits.Add(1)
			}
			return nil
		}
		if !l.syncing {
			break // become the leader
		}
		waited = true
		l.syncCond.Wait()
	}
	l.syncing = true
	l.syncMu.Unlock()

	if l.syncDelay > 0 {
		time.Sleep(l.syncDelay) // widen the batching window (tests)
	}
	l.mu.Lock()
	target := l.appendLSN
	closed := l.closed
	faults := l.faults
	l.mu.Unlock()
	var err error
	if closed {
		err = ErrClosed
	} else if err = faults.Check(FPSync); err == nil {
		err = l.f.Sync()
	}

	l.syncMu.Lock()
	l.syncing = false
	if err == nil {
		if target > l.syncedLSN {
			l.syncedLSN = target
		}
		l.syncs.Add(1)
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	// A failed leader ahead of us may have left our LSN uncovered even
	// though our fsync succeeded; loop via recursion is unnecessary — our
	// fsync covered appendLSN ≥ lsn by definition.
	return nil
}

// Commit appends a commit record for csn and group-syncs it: when Commit
// returns nil, every record of csn is durable.
func (l *Log) Commit(csn uint64) error {
	lsn, err := l.Append(&Record{Type: RecCommit, CSN: csn})
	if err != nil {
		return err
	}
	if err := l.Sync(lsn); err != nil {
		return err
	}
	l.commits.Add(1)
	return nil
}

// Truncate discards the whole log — called by the checkpoint after the
// catalog meta rename committed everything the log described. The caller
// must have quiesced appenders.
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.faults.Check(FPTruncate); err != nil {
		return err
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: truncate seek: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: truncate sync: %w", err)
	}
	l.appendLSN = 0
	l.broken = nil
	l.syncMu.Lock()
	l.syncedLSN = 0
	l.syncMu.Unlock()
	l.truncates.Add(1)
	return nil
}

// SetFaults installs a fault injector on the log's append/sync/replay
// paths after Open (tests only); pass the injector to Open instead to also
// cover recovery.
func (l *Log) SetFaults(inj *fault.Injector) {
	l.mu.Lock()
	l.faults = inj
	l.mu.Unlock()
}

// Size returns the current log length in bytes (the checkpointer's
// size-trigger input).
func (l *Log) Size() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLSN
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:   l.appends.Load(),
		Bytes:     l.bytes.Load(),
		Syncs:     l.syncs.Load(),
		SyncWaits: l.syncWaits.Load(),
		Commits:   l.commits.Load(),
		Replayed:  l.replayed.Load(),
		Truncates: l.truncates.Load(),
	}
}

// Close syncs and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.syncCond.Broadcast()
	return err
}

// Abandon closes the log file WITHOUT syncing — the crash tests' stand-in
// for a process kill: whatever the OS had not persisted is lost.
func (l *Log) Abandon() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.f.Close()
	l.syncCond.Broadcast()
	return err
}

// --- record encoding ---

// EncodeRecord serialises r into the payload bytes the log frames — the
// replication stream reuses it so replicas ship and replay the exact WAL
// record format.
func EncodeRecord(r *Record) []byte { return encodeRecord(r) }

// DecodeRecord parses a payload produced by EncodeRecord. It validates
// structure fully (field bounds, trailing bytes), so it is safe on
// untrusted wire input once the caller has checked the frame CRC.
func DecodeRecord(b []byte) (*Record, error) { return decodeRecord(b) }

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return "", nil, fmt.Errorf("wal: truncated string field")
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

func encodeRecord(r *Record) []byte {
	b := make([]byte, 0, 16+len(r.Table)+len(r.Data)+len(r.Model)+len(r.File))
	b = append(b, byte(r.Type))
	b = binary.LittleEndian.AppendUint64(b, r.CSN)
	switch r.Type {
	case RecInsert:
		b = appendString(b, r.Table)
		b = binary.AppendUvarint(b, uint64(len(r.Data)))
		b = append(b, r.Data...)
	case RecCommit:
	case RecCreateTable:
		b = appendString(b, r.Table)
		b = binary.AppendUvarint(b, uint64(len(r.Cols)))
		for _, c := range r.Cols {
			b = appendString(b, c.Name)
			b = append(b, c.Type)
		}
	case RecDropTable:
		b = appendString(b, r.Table)
	case RecLoadModel:
		b = appendString(b, r.Model)
		b = appendString(b, r.File)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.Acc))
		b = binary.AppendUvarint(b, uint64(len(r.Data)))
		b = append(b, r.Data...)
	case RecBlock:
		b = binary.AppendUvarint(b, uint64(len(r.Data)))
		b = append(b, r.Data...)
	case RecDropModel:
		b = appendString(b, r.Model)
	}
	return b
}

func decodeRecord(b []byte) (*Record, error) {
	if len(b) < 9 {
		return nil, fmt.Errorf("wal: record shorter than header")
	}
	r := &Record{Type: RecType(b[0]), CSN: binary.LittleEndian.Uint64(b[1:9])}
	b = b[9:]
	var err error
	switch r.Type {
	case RecInsert:
		if r.Table, b, err = readString(b); err != nil {
			return nil, err
		}
		n, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b)-sz) < n {
			return nil, fmt.Errorf("wal: truncated insert payload")
		}
		r.Data = append([]byte(nil), b[sz:sz+int(n)]...)
		b = b[sz+int(n):]
	case RecCommit:
	case RecCreateTable:
		if r.Table, b, err = readString(b); err != nil {
			return nil, err
		}
		n, sz := binary.Uvarint(b)
		if sz <= 0 || n > 1<<16 {
			return nil, fmt.Errorf("wal: bad column count")
		}
		b = b[sz:]
		for i := uint64(0); i < n; i++ {
			var c Col
			if c.Name, b, err = readString(b); err != nil {
				return nil, err
			}
			if len(b) < 1 {
				return nil, fmt.Errorf("wal: truncated column type")
			}
			c.Type, b = b[0], b[1:]
			r.Cols = append(r.Cols, c)
		}
	case RecDropTable:
		if r.Table, b, err = readString(b); err != nil {
			return nil, err
		}
	case RecLoadModel:
		if r.Model, b, err = readString(b); err != nil {
			return nil, err
		}
		if r.File, b, err = readString(b); err != nil {
			return nil, err
		}
		if len(b) < 8 {
			return nil, fmt.Errorf("wal: truncated model record")
		}
		r.Acc = math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
		// The trailing manifest is absent in records from pre-blockstore
		// logs; tolerate both forms.
		if len(b) > 0 {
			n, sz := binary.Uvarint(b)
			if sz <= 0 || uint64(len(b)-sz) < n {
				return nil, fmt.Errorf("wal: truncated model manifest")
			}
			if n > 0 {
				r.Data = append([]byte(nil), b[sz:sz+int(n)]...)
			}
			b = b[sz+int(n):]
		}
	case RecBlock:
		n, sz := binary.Uvarint(b)
		if sz <= 0 || n == 0 || n > 1<<17 || uint64(len(b)-sz) < n {
			return nil, fmt.Errorf("wal: bad block payload")
		}
		r.Data = append([]byte(nil), b[sz:sz+int(n)]...)
		b = b[sz+int(n):]
	case RecDropModel:
		if r.Model, b, err = readString(b); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("wal: unknown record type %d", r.Type)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes in record", len(b))
	}
	return r, nil
}
