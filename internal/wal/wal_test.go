package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tensorbase/internal/fault"
)

func openT(t *testing.T, inj *fault.Injector) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Open(path, inj)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, path
}

func collect(t *testing.T, l *Log) []*Record {
	t.Helper()
	var out []*Record
	if err := l.Replay(func(r *Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestRoundTripAllRecordTypes(t *testing.T) {
	l, path := openT(t, nil)
	recs := []*Record{
		{Type: RecCreateTable, CSN: 1, Table: "t", Cols: []Col{{Name: "id", Type: 0}, {Name: "features", Type: 3}}},
		{Type: RecCommit, CSN: 1},
		{Type: RecInsert, CSN: 2, Table: "t", Data: []byte{1, 2, 3, 4, 5}},
		{Type: RecInsert, CSN: 2, Table: "t", Data: nil},
		{Type: RecCommit, CSN: 2},
		{Type: RecLoadModel, CSN: 3, Model: "Fraud-FC-32", File: "db.models/g000001-m0000.tbm", Acc: 0.97},
		{Type: RecCommit, CSN: 3},
		{Type: RecDropTable, CSN: 4, Table: "t"},
		{Type: RecCommit, CSN: 4},
		{Type: RecBlock, CSN: 5, Data: []byte{0, 0, 128, 63, 0, 0, 0, 64}},
		{Type: RecLoadModel, CSN: 5, Model: "Fraud-FC-64", Acc: 0.93, Data: []byte("TBMF-manifest-bytes")},
		{Type: RecCommit, CSN: 5},
		{Type: RecDropModel, CSN: 6, Model: "Fraud-FC-64"},
		{Type: RecCommit, CSN: 6},
	}
	for _, r := range recs {
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatalf("Append(%v): %v", r.Type, err)
		}
		if err := l.Sync(lsn); err != nil {
			t.Fatalf("Sync: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, err := Open(path, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	got := collect(t, l2)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, r := range recs {
		g := got[i]
		if g.Type != r.Type || g.CSN != r.CSN || g.Table != r.Table || g.Model != r.Model || g.File != r.File || g.Acc != r.Acc {
			t.Fatalf("record %d: got %+v want %+v", i, g, r)
		}
		if string(g.Data) != string(r.Data) {
			t.Fatalf("record %d data: got %q want %q", i, g.Data, r.Data)
		}
		if len(g.Cols) != len(r.Cols) {
			t.Fatalf("record %d cols: got %d want %d", i, len(g.Cols), len(r.Cols))
		}
		for j := range r.Cols {
			if g.Cols[j] != r.Cols[j] {
				t.Fatalf("record %d col %d: got %+v want %+v", i, j, g.Cols[j], r.Cols[j])
			}
		}
	}
}

// A torn tail (partial final frame) must be cut at reopen; the valid prefix
// replays intact.
func TestTornTailTruncatedOnOpen(t *testing.T) {
	l, path := openT(t, nil)
	for csn := uint64(1); csn <= 3; csn++ {
		if _, err := l.Append(&Record{Type: RecInsert, CSN: csn, Table: "t", Data: []byte{byte(csn)}}); err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(csn); err != nil {
			t.Fatal(err)
		}
	}
	full := l.Size()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the file mid-frame at several depths; each reopen must settle on
	// a frame boundary and replay whole records only.
	for cut := full - 1; cut > full-9; cut-- {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		torn := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(torn, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(torn, nil)
		if err != nil {
			t.Fatalf("reopen after tear at %d: %v", cut, err)
		}
		got := collect(t, l2)
		// 6 records (3 insert+commit pairs) minus at least the torn one.
		if len(got) != 5 {
			t.Fatalf("tear at %d: replayed %d records, want 5", cut, len(got))
		}
		st, _ := os.Stat(torn)
		if uint64(st.Size()) != l2.Size() {
			t.Fatalf("tear at %d: file %d bytes vs appendLSN %d", cut, st.Size(), l2.Size())
		}
		// The log must accept appends after the cut and replay them.
		if _, err := l2.Append(&Record{Type: RecCommit, CSN: 99}); err != nil {
			t.Fatalf("append after tear: %v", err)
		}
		if got = collect(t, l2); got[len(got)-1].CSN != 99 {
			t.Fatalf("appended record lost after tear")
		}
		l2.Close()
	}
}

// A bit flip anywhere in a frame ends the replay prefix at reopen — records
// before it survive, the damaged one and everything after are discarded.
func TestCorruptFrameEndsPrefix(t *testing.T) {
	inj := fault.New()
	// Corrupt the 5th appended frame (csn 3's insert record).
	inj.CorruptAt(FPFrame, 5)
	l, path := openT(t, inj)
	for csn := uint64(1); csn <= 4; csn++ {
		if _, err := l.Append(&Record{Type: RecInsert, CSN: csn, Table: "t", Data: []byte{byte(csn)}}); err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(csn); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	l2, err := Open(path, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	got := collect(t, l2)
	if len(got) != 4 {
		t.Fatalf("replayed %d records, want the 4 before the corrupt frame", len(got))
	}
	for _, r := range got {
		if r.CSN > 2 {
			t.Fatalf("record with csn %d survived past the corruption", r.CSN)
		}
	}
}

// Append failures must roll the file back to a frame boundary so the log
// stays usable and the failed frame never becomes a torn middle.
func TestAppendFailureRollsBack(t *testing.T) {
	inj := fault.New()
	inj.FailAt(FPAppend, errors.New("boom"), 2)
	l, path := openT(t, inj)
	if _, err := l.Append(&Record{Type: RecCommit, CSN: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Type: RecCommit, CSN: 2}); err == nil {
		t.Fatal("append 2 should have failed")
	}
	if _, err := l.Append(&Record{Type: RecCommit, CSN: 3}); err != nil {
		t.Fatalf("append after failure: %v", err)
	}
	l.Close()
	l2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2)
	if len(got) != 2 || got[0].CSN != 1 || got[1].CSN != 3 {
		t.Fatalf("got %d records, want csns [1 3]", len(got))
	}
}

func TestSyncFailureSurfacesAndRecovers(t *testing.T) {
	inj := fault.New()
	inj.FailAt(FPSync, errors.New("fsync lost power"), 1)
	l, _ := openT(t, inj)
	defer l.Close()
	if err := l.Commit(1); err == nil {
		t.Fatal("commit should surface the fsync failure")
	}
	if err := l.Commit(2); err != nil {
		t.Fatalf("commit after failed fsync: %v", err)
	}
}

// Group commit: concurrent committers share fsyncs. With the leader's
// window widened, fsyncs must come out well under one per commit.
func TestGroupCommitBatchesFsyncs(t *testing.T) {
	l, _ := openT(t, nil)
	defer l.Close()
	l.syncDelay = 2 * time.Millisecond
	const committers = 16
	var wg sync.WaitGroup
	errs := make(chan error, committers)
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(csn uint64) {
			defer wg.Done()
			if _, err := l.Append(&Record{Type: RecInsert, CSN: csn, Table: "t", Data: []byte{1}}); err != nil {
				errs <- err
				return
			}
			errs <- l.Commit(csn)
		}(uint64(i + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
	st := l.Stats()
	if st.Commits != committers {
		t.Fatalf("commits %d, want %d", st.Commits, committers)
	}
	if st.Syncs >= committers {
		t.Fatalf("fsyncs %d not batched below %d commits (waits %d)", st.Syncs, committers, st.SyncWaits)
	}
	if st.SyncWaits == 0 {
		t.Fatalf("no commit rode another's fsync: syncs %d", st.Syncs)
	}
}

func TestTruncateResetsLog(t *testing.T) {
	l, path := openT(t, nil)
	for csn := uint64(1); csn <= 3; csn++ {
		if _, err := l.Append(&Record{Type: RecCommit, CSN: csn}); err != nil {
			t.Fatal(err)
		}
	}
	if l.Size() == 0 {
		t.Fatal("log empty before truncate")
	}
	if err := l.Truncate(); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if l.Size() != 0 {
		t.Fatalf("size %d after truncate", l.Size())
	}
	if got := collect(t, l); len(got) != 0 {
		t.Fatalf("%d records replayed after truncate", len(got))
	}
	// The log keeps working after truncation, across a reopen.
	if _, err := l.Append(&Record{Type: RecCommit, CSN: 9}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(10); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2); len(got) != 2 || got[0].CSN != 9 {
		t.Fatalf("post-truncate records lost: %d replayed", len(got))
	}
}

func TestReplayFaultSurfaces(t *testing.T) {
	inj := fault.New()
	l, path := openT(t, nil)
	for csn := uint64(1); csn <= 3; csn++ {
		if _, err := l.Append(&Record{Type: RecCommit, CSN: csn}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	inj.FailAt(FPReplay, errors.New("read torn"), 2)
	l2, err := Open(path, inj)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	n := 0
	err = l2.Replay(func(*Record) error { n++; return nil })
	if err == nil {
		t.Fatal("replay should surface the injected read fault")
	}
	if n != 1 {
		t.Fatalf("replayed %d records before the fault, want 1", n)
	}
}

// Concurrent appenders and committers under -race: every committed record
// must be replayable, in one global order, with no interleaving corruption.
func TestConcurrentAppendReplayConsistent(t *testing.T) {
	l, path := openT(t, nil)
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				csn := uint64(w*perWriter + i + 1)
				if _, err := l.Append(&Record{Type: RecInsert, CSN: csn, Table: fmt.Sprintf("t%d", w), Data: []byte{byte(w), byte(i)}}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := l.Commit(csn); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	l.Close()
	l2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2)
	if len(got) != writers*perWriter*2 {
		t.Fatalf("replayed %d records, want %d", len(got), writers*perWriter*2)
	}
	commits := map[uint64]bool{}
	for _, r := range got {
		if r.Type == RecCommit {
			commits[r.CSN] = true
		}
	}
	if len(commits) != writers*perWriter {
		t.Fatalf("%d distinct committed csns, want %d", len(commits), writers*perWriter)
	}
}

func TestAbandonLosesNothingSynced(t *testing.T) {
	l, path := openT(t, nil)
	if _, err := l.Append(&Record{Type: RecInsert, CSN: 1, Table: "t", Data: []byte{7}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(1); err != nil {
		t.Fatal(err)
	}
	// Appended but never synced: may or may not survive; must never tear.
	if _, err := l.Append(&Record{Type: RecInsert, CSN: 2, Table: "t", Data: []byte{8}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Abandon(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2)
	if len(got) < 2 {
		t.Fatalf("synced prefix lost: %d records", len(got))
	}
	if got[0].CSN != 1 || got[1].Type != RecCommit {
		t.Fatalf("synced records damaged: %+v", got[0])
	}
}
