package parallel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestBudgetCounts(t *testing.T) {
	b := NewBudget(4)
	if b.Total() != 4 || b.Available() != 4 || b.InUse() != 0 {
		t.Fatalf("fresh budget: total=%d avail=%d inUse=%d", b.Total(), b.Available(), b.InUse())
	}
	b.Acquire(3)
	if b.Available() != 1 || b.InUse() != 3 {
		t.Fatalf("after acquire: avail=%d inUse=%d", b.Available(), b.InUse())
	}
	b.Release(2)
	if b.Available() != 3 || b.InUse() != 1 {
		t.Fatalf("after release: avail=%d inUse=%d", b.Available(), b.InUse())
	}
	b.Release(1)
}

func TestBudgetDefaultsToGOMAXPROCS(t *testing.T) {
	if NewBudget(0).Total() < 1 {
		t.Fatal("zero-token budget")
	}
	if NewBudget(-3).Total() < 1 {
		t.Fatal("zero-token budget")
	}
}

func TestAcquireBeyondTotalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Acquire(total+1) must panic, not deadlock")
		}
	}()
	NewBudget(2).Acquire(3)
}

func TestReleaseBeyondHeldPanics(t *testing.T) {
	b := NewBudget(2)
	b.Acquire(1)
	defer func() {
		if recover() == nil {
			t.Fatal("over-release must panic")
		}
	}()
	b.Release(2)
}

func TestTryAcquireAllOrNothing(t *testing.T) {
	b := NewBudget(3)
	if !b.TryAcquire(3) {
		t.Fatal("3 of 3 should succeed")
	}
	if b.TryAcquire(1) {
		t.Fatal("budget is drained")
	}
	if b.InUse() != 3 {
		t.Fatalf("failed TryAcquire leaked: inUse=%d", b.InUse())
	}
	b.Release(3)
	if b.TryAcquire(4) {
		t.Fatal("more than total must fail")
	}
	if b.InUse() != 0 {
		t.Fatalf("failed TryAcquire leaked: inUse=%d", b.InUse())
	}
}

func TestTryAcquireUpToPartialGrant(t *testing.T) {
	b := NewBudget(4)
	b.Acquire(3)
	if got := b.TryAcquireUpTo(8); got != 1 {
		t.Fatalf("partial grant = %d, want 1", got)
	}
	if got := b.TryAcquireUpTo(8); got != 0 {
		t.Fatalf("drained grant = %d, want 0", got)
	}
	if got := b.TryAcquireUpTo(0); got != 0 {
		t.Fatalf("zero request = %d", got)
	}
	b.Release(4)
}

func TestAcquireBlocksUntilReleased(t *testing.T) {
	b := NewBudget(1)
	b.Acquire(1)
	got := make(chan struct{})
	go func() {
		b.Acquire(1) // must block until the release below
		close(got)
	}()
	select {
	case <-got:
		t.Fatal("second Acquire succeeded while token was held")
	default:
	}
	b.Release(1)
	<-got
	b.Release(1)
}

func TestHighWaterTracksPeak(t *testing.T) {
	b := NewBudget(8)
	b.Acquire(5)
	b.Release(3)
	b.Acquire(1)
	if hw := b.HighWater(); hw != 5 {
		t.Fatalf("high water = %d, want 5", hw)
	}
	b.ResetHighWater()
	if hw := b.HighWater(); hw != 3 {
		t.Fatalf("reset high water = %d, want current in-use 3", hw)
	}
	b.Release(3)
}

// The core oversubscription property: no interleaving of concurrent
// TryAcquireUpTo/Release ever drives the held-token peak past Total.
func TestConcurrentAcquireNeverOversubscribes(t *testing.T) {
	b := NewBudget(4)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := b.TryAcquireUpTo(3)
				if n > 0 {
					b.Release(n)
				}
			}
		}()
	}
	wg.Wait()
	if hw := b.HighWater(); hw > b.Total() {
		t.Fatalf("high water %d exceeds total %d", hw, b.Total())
	}
	if b.InUse() != 0 {
		t.Fatalf("tokens leaked: %d", b.InUse())
	}
}

func TestSetDefaultRestores(t *testing.T) {
	mine := NewBudget(2)
	prev := SetDefault(mine)
	if Default() != mine {
		t.Fatal("SetDefault did not install")
	}
	SetDefault(prev)
	if Default() != prev {
		t.Fatal("restore failed")
	}
	if SetDefault(nil) == nil {
		t.Fatal("swap must return previous")
	}
	SetDefault(prev)
}

func TestRunCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		const n = 100
		var hits [n]atomic.Int32
		err := Run(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d run %d times", workers, i, got)
			}
		}
	}
}

func TestRunReturnsFirstErrorAndStops(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := Run(4, 1000, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() == 1000 {
		t.Fatal("error did not stop remaining work")
	}
}

func TestRunZeroTasks(t *testing.T) {
	if err := Run(4, 0, func(int) error { t.Fatal("task ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}
