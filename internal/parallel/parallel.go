// Package parallel implements the shared worker-pool scheduler that
// coordinates the engine's query-level workers with the tensor kernels'
// internal fan-out — the paper's Sec. 3 problem of RDBMS threads and
// BLAS/OpenMP threads independently oversubscribing the same cores.
//
// The design is a single process-wide Budget of compute tokens (one per
// core). Every component that wants to run on more than its caller's
// goroutine — the blocked-multiply scheduler, the partitioned aggregate,
// a matmul kernel fanning out over row bands — asks the budget for extra
// tokens and gets however many are actually free, possibly zero. The
// caller's own goroutine is always an implicit worker, so progress never
// depends on token availability; tokens only bound *additional*
// parallelism. Nesting therefore degrades gracefully: when the block
// scheduler has taken every token for block-level workers, the kernels
// inside those workers find the budget empty and run serially instead of
// multiplying the goroutine count.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tensorbase/internal/lifecycle"
)

// Budget is a pool of compute tokens. Acquire-style calls never hand out
// more than Total tokens; the high-water mark records the peak tokens ever
// simultaneously held, which regression tests use to prove the engine does
// not oversubscribe. Budget is safe for concurrent use.
type Budget struct {
	mu    sync.Mutex
	cond  *sync.Cond
	total int
	inUse int
	high  int
}

// NewBudget returns a budget of n tokens (n <= 0 uses GOMAXPROCS).
func NewBudget(n int) *Budget {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	b := &Budget{total: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Total returns the token count.
func (b *Budget) Total() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// InUse returns the tokens currently held.
func (b *Budget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inUse
}

// Available returns the tokens currently free.
func (b *Budget) Available() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total - b.inUse
}

// Acquire blocks until n tokens are held. Acquiring more than Total panics
// (it would deadlock).
func (b *Budget) Acquire(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n > b.total {
		panic(fmt.Sprintf("parallel: acquire of %d exceeds %d tokens", n, b.total))
	}
	for b.total-b.inUse < n {
		b.cond.Wait()
	}
	b.takeLocked(n)
}

// TryAcquire attempts to take exactly n tokens without blocking, returning
// whether it succeeded.
func (b *Budget) TryAcquire(n int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n > b.total-b.inUse {
		return false
	}
	b.takeLocked(n)
	return true
}

// TryAcquireUpTo takes as many tokens as are free, at most n, and returns
// the number taken (possibly zero). This is the partial grant nested
// parallelism uses: a kernel that wants k-way fan-out runs with
// 1 + TryAcquireUpTo(k-1) workers.
func (b *Budget) TryAcquireUpTo(n int) int {
	if n <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if free := b.total - b.inUse; n > free {
		n = free
	}
	if n > 0 {
		b.takeLocked(n)
	}
	return n
}

func (b *Budget) takeLocked(n int) {
	b.inUse += n
	if b.inUse > b.high {
		b.high = b.inUse
	}
}

// Release returns n tokens. Releasing more than is held panics: it
// indicates double-release accounting in the caller.
func (b *Budget) Release(n int) {
	if n == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if n < 0 || n > b.inUse {
		panic(fmt.Sprintf("parallel: release of %d with %d in use", n, b.inUse))
	}
	b.inUse -= n
	b.cond.Broadcast()
}

// HighWater returns the peak tokens simultaneously held since the last
// ResetHighWater.
func (b *Budget) HighWater() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.high
}

// ResetHighWater clears the high-water mark (down to the current in-use
// count).
func (b *Budget) ResetHighWater() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.high = b.inUse
}

// defaultBudget is the process-wide budget every kernel and scheduler draws
// from unless a component is explicitly handed its own.
var defaultBudget atomic.Pointer[Budget]

func init() {
	defaultBudget.Store(NewBudget(0))
}

// Default returns the process-wide compute budget.
func Default() *Budget { return defaultBudget.Load() }

// SetDefault installs b as the process-wide budget and returns the previous
// one so callers (the resource governor, tests) can restore it.
func SetDefault(b *Budget) *Budget {
	if b == nil {
		b = NewBudget(0)
	}
	return defaultBudget.Swap(b)
}

// Run executes task(i) for every i in [0, n) using the caller's goroutine
// plus workers-1 spawned ones, handing out indices dynamically so uneven
// tasks balance. The caller is responsible for sizing workers against a
// Budget (or forcing a count, e.g. in a benchmark sweep); Run itself spawns
// exactly what it is told. The first task error stops the remaining work
// (tasks already running complete) and is returned. A panicking task does
// not kill the process: it is recovered, converted to a *lifecycle.PanicError,
// and reported like any other task error.
func Run(workers, n int, task func(i int) error) error {
	return RunCancel(nil, workers, n, task)
}

// RunCancel is Run with a cancellation token: before each task, every worker
// checks tok and stops handing out work once the token fires, returning the
// context's error. A nil token behaves exactly like Run.
func RunCancel(tok *lifecycle.Token, workers, n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	// runTask isolates the recover so a panic in task(i) aborts only this
	// pool run, with the offending stack attached.
	runTask := func(i int) (err error) {
		defer func() {
			if perr := lifecycle.AsError(recover()); perr != nil {
				err = perr
			}
		}()
		return task(i)
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := tok.Err(); err != nil {
				return err
			}
			if err := runTask(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	work := func() {
		for !failed.Load() {
			if err := tok.Err(); err != nil {
				errOnce.Do(func() { firstErr = err })
				failed.Store(true)
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := runTask(i); err != nil {
				errOnce.Do(func() { firstErr = err })
				failed.Store(true)
				return
			}
		}
	}
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	return firstErr
}
