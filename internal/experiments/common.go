// Package experiments implements the paper's evaluation (Sec. 7): one
// driver per table/figure that builds the workload, runs every compared
// system, and returns the result rows. The cmd/bench binary prints them;
// bench_test.go wraps the per-system inner loops as testing.B benchmarks.
//
// Absolute numbers differ from the paper (the substrate is a single-box
// simulation, not an r4.2xlarge with TensorFlow/PyTorch), but each driver
// reproduces the comparison's *shape*: who wins, who OOMs, and roughly by
// what factor.
package experiments

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tensorbase/internal/memlimit"
	"tensorbase/internal/storage"
	"tensorbase/internal/table"
	"tensorbase/internal/tensor"
)

// Config scales the experiments.
type Config struct {
	// Quick shrinks workloads for CI/test runs; the full configuration
	// is used by cmd/bench.
	Quick bool
	// Dir is where database files are created (default: a temp dir).
	Dir string
	// Seed drives all data generation.
	Seed int64
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 7
	}
	return c.Seed
}

// workdir returns a directory for database files plus a cleanup func.
func (c Config) workdir() (string, func(), error) {
	if c.Dir != "" {
		return c.Dir, func() {}, nil
	}
	dir, err := os.MkdirTemp("", "tensorbase-exp-")
	if err != nil {
		return "", nil, err
	}
	return dir, func() { os.RemoveAll(dir) }, nil
}

// Row is one reported measurement.
type Row struct {
	Exp      string        // experiment id: fig2, fig3, table3, pushdown, cache
	Workload string        // model / dataset
	System   string        // ours | udf-centric | tensorflow(graph) | pytorch(eager) | ...
	Batch    int           // batch size (0 if not applicable)
	Latency  time.Duration // end-to-end latency; 0 when Status != OK
	Status   string        // "OK" or "OOM"
	Note     string        // free-form: speedup, accuracy, ...
}

// Format renders rows as an aligned text table.
func Format(rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-9s %-18s %-19s %7s %12s %-5s %s\n",
		"exp", "workload", "system", "batch", "latency", "stat", "note")
	for _, r := range rows {
		lat := "-"
		if r.Status == "OK" {
			lat = r.Latency.Round(time.Microsecond).String()
		}
		fmt.Fprintf(&sb, "%-9s %-18s %-19s %7d %12s %-5s %s\n",
			r.Exp, r.Workload, r.System, r.Batch, lat, r.Status, r.Note)
	}
	return sb.String()
}

// newPoolAt opens a fresh database file in dir and returns its pool.
func newPoolAt(dir, name string, frames int) (*storage.BufferPool, func() error, error) {
	disk, err := storage.OpenDisk(filepath.Join(dir, name))
	if err != nil {
		return nil, nil, err
	}
	return storage.NewBufferPool(disk, frames), disk.Close, nil
}

// storeFeatureTable writes an (n, width) tensor into a heap as
// (id, features) rows and returns the heap.
func storeFeatureTable(pool *storage.BufferPool, x *tensor.Tensor) (*table.Heap, error) {
	schema := table.MustSchema(
		table.Column{Name: "id", Type: table.Int64},
		table.Column{Name: "features", Type: table.FloatVec},
	)
	h, err := table.NewHeap(pool, schema)
	if err != nil {
		return nil, err
	}
	for i := 0; i < x.Dim(0); i++ {
		if _, err := h.Insert(table.Tuple{
			table.IntVal(int64(i)),
			table.VecVal(x.Row(i)),
		}); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// chunkedSchema stores tensors too large for one record as chunk rows.
var chunkedSchema = table.MustSchema(
	table.Column{Name: "tensor_id", Type: table.Int64},
	table.Column{Name: "chunk", Type: table.Int64},
	table.Column{Name: "data", Type: table.FloatVec},
)

const chunkFloats = 8000 // 32 KB per chunk, fits one record

// storeTensorChunked writes each "row" of dimension 0 of x (e.g. one image)
// as a sequence of chunk tuples.
func storeTensorChunked(pool *storage.BufferPool, x *tensor.Tensor) (*table.Heap, error) {
	h, err := table.NewHeap(pool, chunkedSchema)
	if err != nil {
		return nil, err
	}
	n := x.Dim(0)
	per := x.Len() / n
	for i := 0; i < n; i++ {
		row := x.Data()[i*per : (i+1)*per]
		for c := 0; c*chunkFloats < len(row); c++ {
			end := min((c+1)*chunkFloats, len(row))
			if _, err := h.Insert(table.Tuple{
				table.IntVal(int64(i)),
				table.IntVal(int64(c)),
				table.VecVal(row[c*chunkFloats : end]),
			}); err != nil {
				return nil, err
			}
		}
	}
	return h, nil
}

// loadTensorChunked reassembles n rows of per floats each from a chunked
// heap (scan order matches insertion order).
func loadTensorChunked(h *table.Heap, n, per int) (*tensor.Tensor, error) {
	out := tensor.New(n, per)
	sc := h.Scan()
	for {
		t, ok, err := sc.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		i := int(t[0].Int)
		c := int(t[1].Int)
		if i < 0 || i >= n {
			return nil, fmt.Errorf("experiments: chunk for tensor %d out of range", i)
		}
		copy(out.Data()[i*per+c*chunkFloats:], t[2].Vec)
	}
	return out, nil
}

// oomRow builds a Row for an out-of-memory outcome, propagating unexpected
// errors instead.
func oomRow(base Row, err error) (Row, error) {
	if errIsOOM(err) {
		base.Status = "OOM"
		return base, nil
	}
	return Row{}, err
}

func errIsOOM(err error) bool {
	return errors.Is(err, memlimit.ErrOOM)
}
