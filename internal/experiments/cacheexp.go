package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"tensorbase/internal/cache"
	"tensorbase/internal/data"
	"tensorbase/internal/nn"
	"tensorbase/internal/tensor"
)

// CacheExp reproduces Sec. 7.2.2 (caching of inference results): a trained
// model serves queries either by full inference or through the HNSW-indexed
// result cache; the cache trades accuracy for latency. The paper reports a
// 10.3× speedup with accuracy 98.75% → 93.65% for a small CNN, and 7.3×
// with 97.74% → 95.26% for an MNIST FFNN. The driver reports the measured
// speedup and the accuracy pair for both model families.
func CacheExp(cfg Config) ([]Row, error) {
	var out []Row

	cnnRows, err := cacheOne(cfg, "CNN", true)
	if err != nil {
		return nil, err
	}
	out = append(out, cnnRows...)

	ffnnRows, err := cacheOne(cfg, "FFNN-MNIST", false)
	if err != nil {
		return nil, err
	}
	return append(out, ffnnRows...), nil
}

func cacheOne(cfg Config, name string, cnn bool) ([]Row, error) {
	side := 20
	train, test := 3000, 1000
	epochs := 6
	if cfg.Quick {
		side = 12
		train, test = 800, 300
		epochs = 8
	}
	// Higher noise than the default so classes overlap near boundaries:
	// the model still trains to high accuracy, but approximate reuse of a
	// neighbour's prediction occasionally crosses a class boundary — the
	// Sec. 7.2.2 accuracy/latency trade-off. Full scale uses lower noise:
	// the larger images concentrate distances, so less noise produces a
	// comparable confusion rate.
	noise := 0.27
	if cfg.Quick {
		noise = 0.25
	}
	d := data.MNISTLikeNoisy(cfg.seed()+21, train+test, side, noise)
	rng := rand.New(rand.NewSource(cfg.seed() + 22))

	var model *nn.Model
	var trainX, testX *tensor.Tensor
	pix := side * side
	if cnn {
		model = nn.CacheCNN(rng, side)
		trainX = d.X.SliceRows(0, train)
		testX = d.X.SliceRows(train, train+test)
	} else {
		var ffnn *nn.Model
		if cfg.Quick {
			// A proportionally narrowed FFNN so tests stay fast; the
			// full run (cmd/bench) uses the paper's 128/1024/2048/64.
			ffnn = nn.MustModel("Cache-FFNN", []int{1, pix},
				nn.NewLinear(rng, pix, 128), nn.ReLU{},
				nn.NewLinear(rng, 128, 512), nn.ReLU{},
				nn.NewLinear(rng, 512, 64), nn.ReLU{},
				nn.NewLinear(rng, 64, 10), nn.Softmax{},
			)
		} else {
			ffnn = nn.CacheFFNN(rng, pix)
		}
		model = ffnn
		flat := d.FlatImages()
		trainX = flat.X.Slice2D(0, train, 0, pix)
		testX = flat.X.Slice2D(train, train+test, 0, pix)
	}
	trainY := d.Labels[:train]
	testY := d.Labels[train : train+test]

	if _, err := nn.Train(model, trainX, trainY, nn.TrainConfig{
		Epochs: epochs, BatchSize: 32, LR: 0.12, Seed: cfg.seed(),
	}); err != nil {
		return nil, err
	}

	// Full-inference baseline: accuracy and per-query latency.
	fullStart := time.Now()
	fullAcc, err := accuracyRows(model, testX, testY)
	if err != nil {
		return nil, err
	}
	fullLat := time.Since(fullStart)

	// Cached serving: warm the cache with the training set's predictions
	// (the "frequent inference requests" of Sec. 5), then serve the test
	// queries through the HNSW lookup path. The admission threshold is
	// sized to the data's noise level so near-duplicates hit.
	featDim := trainX.Len() / trainX.Dim(0)
	// Threshold slightly above the expected same-class distance
	// (≈ 2·noise²·dim): most queries hit a same-class neighbour, but
	// sibling-class prototypes fall inside the band often enough that
	// approximate reuse costs accuracy.
	thresh := float64(featDim) * noise * noise * threshMult(cfg)
	rc, err := cache.NewHNSW(featDim, thresh)
	if err != nil {
		return nil, err
	}
	cm := cache.NewCachedModel(model, rc)
	flatTrain := trainX.Reshape(trainX.Dim(0), featDim)
	for i := 0; i < flatTrain.Dim(0); i++ {
		if _, err := cm.PredictRow(flatTrain.Row(i)); err != nil {
			return nil, err
		}
	}

	flatTest := testX.Reshape(testX.Dim(0), featDim)
	cachedStart := time.Now()
	correct := 0
	for i := 0; i < flatTest.Dim(0); i++ {
		cls, err := cm.PredictClass(flatTest.Row(i))
		if err != nil {
			return nil, err
		}
		if cls == testY[i] {
			correct++
		}
	}
	cachedLat := time.Since(cachedStart)
	cachedAcc := float64(correct) / float64(len(testY))
	hits, misses := rc.Stats()
	speedup := float64(fullLat) / float64(cachedLat)

	return []Row{
		{Exp: "cache", Workload: name, System: "full-inference", Batch: len(testY), Latency: fullLat, Status: "OK",
			Note: fmt.Sprintf("accuracy %.2f%%", 100*fullAcc)},
		{Exp: "cache", Workload: name, System: "hnsw-cache", Batch: len(testY), Latency: cachedLat, Status: "OK",
			Note: fmt.Sprintf("accuracy %.2f%%, %.1fx speedup, hit rate %.0f%%",
				100*cachedAcc, speedup, 100*float64(hits)/float64(hits+misses))},
	}, nil
}

// accuracyRows runs full inference per row (the serving access pattern,
// matching how the cached path is measured) and returns accuracy.
func accuracyRows(m *nn.Model, x *tensor.Tensor, labels []int) (float64, error) {
	n := x.Dim(0)
	per := x.Len() / n
	correct := 0
	for i := 0; i < n; i++ {
		shape := append([]int(nil), m.InShape...)
		shape[0] = 1
		row := tensor.FromSlice(x.Data()[i*per:(i+1)*per], shape...)
		out := m.Forward(row.Clone())
		flat := out.Reshape(1, out.Len())
		if flat.ArgMaxRow(0) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n), nil
}

// threshMult tunes the cache admission radius: tighter at full scale (more
// cached entries make wrong-class nearest neighbours more likely, so the
// radius compensates to keep the accuracy trade-off in the paper's band).
func threshMult(cfg Config) float64 {
	if cfg.Quick {
		return 3.0
	}
	return 2.7
}
