package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"tensorbase/internal/core"
	"tensorbase/internal/data"
	"tensorbase/internal/exec"
	"tensorbase/internal/nn"
)

// Pushdown reproduces Sec. 7.2.1 (model decomposition and push-down): the
// Bosch-like workload vertically partitions 968 features into two tables of
// 484, similarity-joins them on their most-correlated column pair, and runs
// a 968→256→2 FFNN over the joined features. The decomposition rule
// rewrites W·(D1 ⋈ D2) into (W1·D1) ⋈ (W2·D2): the partial products run
// once per base row below the join, and the join carries 256-wide hidden
// vectors instead of 968-wide raw features. The paper measures a 5.7×
// speedup; the shape (substantially faster with identical results) is what
// this driver reproduces.
func Pushdown(cfg Config) ([]Row, error) {
	rowsPerSide := 2000
	features := 484
	multiplicity := 8
	if cfg.Quick {
		rowsPerSide = 300
		features = 96
		multiplicity = 4
	}
	d1, d2 := data.BoschTables(cfg.seed(), rowsPerSide, features, multiplicity)
	rng := rand.New(rand.NewSource(cfg.seed() + 9))
	model := nn.BoschFC(rng, 2*features)

	q := &core.FeatureJoinQuery{
		LeftSim: "s1", RightSim: "s2",
		LeftVec: "v1", RightVec: "v2",
		Eps:   0.25,
		Model: model,
		Batch: 256,
	}

	run := func(build func() (exec.Operator, error)) (time.Duration, int, error) {
		start := time.Now()
		op, err := build()
		if err != nil {
			return 0, 0, err
		}
		rows, err := exec.Collect(op)
		if err != nil {
			return 0, 0, err
		}
		return time.Since(start), len(rows), nil
	}

	// Fresh scans per run: operators are single-use pipelines.
	q.Left = exec.NewMemScan(data.BoschSchema("s1", "v1"), d1)
	q.Right = exec.NewMemScan(data.BoschSchema("s2", "v2"), d2)
	naiveLat, naiveRows, err := run(q.BuildNaive)
	if err != nil {
		return nil, err
	}
	q.Left = exec.NewMemScan(data.BoschSchema("s1", "v1"), d1)
	q.Right = exec.NewMemScan(data.BoschSchema("s2", "v2"), d2)
	pdLat, pdRows, err := run(q.BuildPushdown)
	if err != nil {
		return nil, err
	}
	if naiveRows != pdRows {
		return nil, fmt.Errorf("experiments: plans disagree: naive %d rows, pushdown %d", naiveRows, pdRows)
	}
	speedup := float64(naiveLat) / float64(pdLat)
	return []Row{
		{Exp: "pushdown", Workload: "Bosch-FC", System: "join-then-infer", Batch: naiveRows, Latency: naiveLat, Status: "OK"},
		{Exp: "pushdown", Workload: "Bosch-FC", System: "decompose+pushdown", Batch: pdRows, Latency: pdLat, Status: "OK",
			Note: fmt.Sprintf("%.1fx speedup (paper: 5.7x)", speedup)},
	}, nil
}
