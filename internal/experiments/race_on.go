//go:build race

package experiments

// raceEnabled reports that the race detector is active; timing-shape tests
// skip their latency assertions because instrumentation overhead (10-30×,
// unevenly distributed) invalidates cross-system comparisons.
const raceEnabled = true
