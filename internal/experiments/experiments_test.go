package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func quickCfg(t *testing.T) Config {
	t.Helper()
	return Config{Quick: true, Dir: t.TempDir(), Seed: 7}
}

func find(t *testing.T, rows []Row, workload, system string, batch int) Row {
	t.Helper()
	for _, r := range rows {
		if r.Workload == workload && r.System == system && (batch == 0 || r.Batch == batch) {
			return r
		}
	}
	t.Fatalf("no row for %s/%s batch %d in:\n%s", workload, system, batch, Format(rows))
	return Row{}
}

func TestFig2ShapeInDBFasterThanDLCentric(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-shape assertions are not meaningful under the race detector")
	}
	rows, err := Fig2(quickCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // 3 models × 3 systems
		t.Fatalf("got %d rows:\n%s", len(rows), Format(rows))
	}
	for _, model := range []string{"Fraud-FC-256", "Fraud-FC-512", "Encoder-FC"} {
		ours := find(t, rows, model, "ours(in-db)", 0)
		graph := find(t, rows, model, "dl-centric(graph)", 0)
		eager := find(t, rows, model, "dl-centric(eager)", 0)
		if ours.Status != "OK" || graph.Status != "OK" || eager.Status != "OK" {
			t.Fatalf("unexpected status:\n%s", Format(rows))
		}
		if model == "Encoder-FC" {
			// Encoder-FC is compute-bound; with shared kernels the gap
			// narrows to the transfer cost, so only require that the
			// in-db path is not meaningfully slower.
			limit := graph.Latency + graph.Latency/5
			if ours.Latency > limit {
				t.Errorf("%s: ours %v more than 20%% slower than graph %v", model, ours.Latency, graph.Latency)
			}
			continue
		}
		// The paper's Fig. 2 shape: in-database serving is faster for
		// small models because cross-system transfer dominates.
		if ours.Latency >= graph.Latency || ours.Latency >= eager.Latency {
			t.Errorf("%s: ours %v not faster than graph %v / eager %v",
				model, ours.Latency, graph.Latency, eager.Latency)
		}
	}
}

func TestFig3ShapeInDBFasterThanDLCentric(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-shape assertions are not meaningful under the race detector")
	}
	rows, err := Fig3(quickCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows:\n%s", len(rows), Format(rows))
	}
	ours := find(t, rows, "DeepBench-CONV1", "ours(in-db)", 0)
	graph := find(t, rows, "DeepBench-CONV1", "dl-centric(graph)", 0)
	if ours.Latency >= graph.Latency {
		t.Errorf("ours %v not faster than dl-centric %v", ours.Latency, graph.Latency)
	}
}

func TestTable3OOMPattern(t *testing.T) {
	rows, err := Table3(quickCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 3 (small batch = 100/1, large batch = 800/2 scaled):
	//   Amazon small: everyone completes.
	//   Amazon large: only the relation-centric plan completes.
	//   LandCover small: ours and the graph runtime complete; the
	//     UDF-centric path and the eager runtime OOM.
	//   LandCover large: only ours completes.
	type want struct {
		workload string
		batch    int
		system   string
		status   string
	}
	wants := []want{
		{"Amazon-14k-FC", 100, "ours(adaptive)", "OK"},
		{"Amazon-14k-FC", 100, "udf-centric", "OK"},
		{"Amazon-14k-FC", 100, "dl-centric(graph)", "OK"},
		{"Amazon-14k-FC", 100, "dl-centric(eager)", "OK"},
		{"Amazon-14k-FC", 800, "ours(adaptive)", "OK"},
		{"Amazon-14k-FC", 800, "udf-centric", "OOM"},
		{"Amazon-14k-FC", 800, "dl-centric(graph)", "OOM"},
		{"Amazon-14k-FC", 800, "dl-centric(eager)", "OOM"},
		{"LandCover", 1, "ours(adaptive)", "OK"},
		{"LandCover", 1, "udf-centric", "OOM"},
		{"LandCover", 1, "dl-centric(graph)", "OK"},
		{"LandCover", 1, "dl-centric(eager)", "OOM"},
		{"LandCover", 2, "ours(adaptive)", "OK"},
		{"LandCover", 2, "udf-centric", "OOM"},
		{"LandCover", 2, "dl-centric(graph)", "OOM"},
		{"LandCover", 2, "dl-centric(eager)", "OOM"},
	}
	for _, w := range wants {
		r := find(t, rows, w.workload, w.system, w.batch)
		if r.Status != w.status {
			t.Errorf("%s/%s batch %d: status %s, want %s", w.workload, w.system, w.batch, r.Status, w.status)
		}
	}
	if t.Failed() {
		t.Logf("full table:\n%s", Format(rows))
	}
}

func TestPushdownSpeedupAndEquivalence(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-shape assertions are not meaningful under the race detector")
	}
	rows, err := Pushdown(quickCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows:\n%s", Format(rows))
	}
	naive, pd := rows[0], rows[1]
	if naive.Batch != pd.Batch {
		t.Fatalf("result row counts differ: %d vs %d", naive.Batch, pd.Batch)
	}
	if naive.Batch == 0 {
		t.Fatal("join produced no rows")
	}
	// The paper's 5.7× comes from a large workload; at quick scale the
	// shape requirement is a clear speedup.
	if pd.Latency*3/2 >= naive.Latency {
		t.Errorf("pushdown %v not at least 1.5x faster than naive %v", pd.Latency, naive.Latency)
	}
}

func TestCacheExpSpeedupAndAccuracyDrop(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-shape assertions are not meaningful under the race detector")
	}
	rows, err := CacheExp(quickCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows:\n%s", Format(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		full, cached := rows[i], rows[i+1]
		if full.System != "full-inference" || cached.System != "hnsw-cache" {
			t.Fatalf("unexpected systems:\n%s", Format(rows))
		}
		// Sec. 7.2.2 shape: the cache is faster and trades away some
		// accuracy (the paper loses ~5 points), but does not collapse.
		if cached.Latency >= full.Latency {
			t.Errorf("%s: cache %v not faster than full %v", full.Workload, cached.Latency, full.Latency)
		}
		fullAcc := parseAccuracy(t, full.Note)
		cachedAcc := parseAccuracy(t, cached.Note)
		if fullAcc < 90 {
			t.Errorf("%s: full accuracy %.1f%% too low, model underfit", full.Workload, fullAcc)
		}
		drop := fullAcc - cachedAcc
		if drop < 1 || drop > 30 {
			t.Errorf("%s: accuracy drop %.1f points outside the expected band (paper: ~5)", full.Workload, drop)
		}
		if !strings.Contains(cached.Note, "speedup") {
			t.Errorf("cache note missing speedup: %q", cached.Note)
		}
	}
}

func parseAccuracy(t *testing.T, note string) float64 {
	t.Helper()
	var acc float64
	i := strings.Index(note, "accuracy ")
	if i < 0 {
		t.Fatalf("note %q missing accuracy", note)
	}
	if _, err := fmt.Sscanf(note[i:], "accuracy %f%%", &acc); err != nil {
		t.Fatalf("cannot parse accuracy from %q: %v", note, err)
	}
	return acc
}

func TestModelZooPrintsPaperTables(t *testing.T) {
	s, err := ModelZoo(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fraud-FC-256", "Fraud-FC-512", "Encoder-FC", "Amazon-14k-FC", "DeepBench-CONV1", "LandCover", "Table 1", "Table 2"} {
		if !strings.Contains(s, want) {
			t.Errorf("zoo output missing %q:\n%s", want, s)
		}
	}
}

func TestFormatRendersOOM(t *testing.T) {
	s := Format([]Row{
		{Exp: "x", Workload: "w", System: "s", Batch: 1, Latency: time.Second, Status: "OK"},
		{Exp: "x", Workload: "w", System: "s2", Batch: 1, Status: "OOM"},
	})
	if !strings.Contains(s, "OOM") || !strings.Contains(s, "1s") {
		t.Fatalf("format:\n%s", s)
	}
}
