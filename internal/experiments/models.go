package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"tensorbase/internal/nn"
)

// ModelZoo renders Tables 1 and 2 of the paper: the fully connected and
// convolutional model families the evaluation serves, with per-model
// parameter sizes and the optimizer's memory estimate of the largest
// operator at a reference batch size.
func ModelZoo(cfg Config) (string, error) {
	rng := rand.New(rand.NewSource(cfg.seed()))
	amazonScale, landScale := 256, 10
	if cfg.Quick {
		amazonScale, landScale = 512, 20
	}
	var sb strings.Builder
	sb.WriteString("Table 1: fully connected models (features/hidden/outputs)\n")
	fcs := []struct {
		m     *nn.Model
		dims  string
		batch int
	}{
		{nn.FraudFC(rng, 256), "28 / 256 / 2", 1000},
		{nn.FraudFC(rng, 512), "28 / 512 / 2", 1000},
		{nn.EncoderFC(rng), "76 / 3072 / 768", 1000},
	}
	in, hid, out := nn.Amazon14kDims(amazonScale)
	fcs = append(fcs, struct {
		m     *nn.Model
		dims  string
		batch int
	}{nn.Amazon14kFC(rng, amazonScale), fmt.Sprintf("%d / %d / %d (597540/1024/14588 ÷ %d)", in, hid, out, amazonScale), 1000})

	fmt.Fprintf(&sb, "%-16s %-42s %12s %14s\n", "model", "dims", "params", "maxOp@b1000")
	for _, f := range fcs {
		maxOp, err := f.m.MaxOpBytes(f.batch)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%-16s %-42s %12s %14s\n", f.m.Name(), f.dims, fmtBytes(f.m.ParamBytes()), fmtBytes(maxOp))
	}

	sb.WriteString("\nTable 2: convolutional models (stride 1, no padding)\n")
	hw, oc := nn.LandCoverDims(landScale)
	convs := []struct {
		m    *nn.Model
		dims string
	}{
		{nn.DeepBenchConv1(rng), "input 112x112x64, kernel 64x64x1x1"},
		{nn.LandCover(rng, landScale), fmt.Sprintf("input %dx%dx3, kernel %dx3x1x1 (2500/2048 ÷ %d)", hw, hw, oc, landScale)},
	}
	fmt.Fprintf(&sb, "%-16s %-42s %12s %14s\n", "model", "dims", "params", "maxOp@b1")
	for _, c := range convs {
		maxOp, err := c.m.MaxOpBytes(1)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%-16s %-42s %12s %14s\n", c.m.Name(), c.dims, fmtBytes(c.m.ParamBytes()), fmtBytes(maxOp))
	}
	return sb.String(), nil
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
