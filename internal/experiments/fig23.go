package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"tensorbase/internal/connector"
	"tensorbase/internal/core"
	"tensorbase/internal/data"
	"tensorbase/internal/dlruntime"
	"tensorbase/internal/exec"
	"tensorbase/internal/memlimit"
	"tensorbase/internal/nn"
	"tensorbase/internal/storage"
	"tensorbase/internal/table"
	"tensorbase/internal/tensor"
	"tensorbase/internal/udf"
)

// Wire models the part of the cross-system path our in-process connector
// cannot measure: the socket hop and the client-side parse/materialisation
// of the PostgreSQL → ConnectorX → framework pipeline. Costs are charged as
// a single sleep per transfer: a throughput term plus a per-value term (the
// database wire protocol and the dataframe conversion touch every value).
type Wire struct {
	BytesPerSec float64
	PerValue    time.Duration
	PerRow      time.Duration
}

// DefaultWire reflects a local socket (≈1 GiB/s), ≈20ns of protocol parse +
// conversion per value, and ≈2µs of driver overhead per row — conservative
// relative to measured ConnectorX costs.
func DefaultWire() Wire {
	return Wire{BytesPerSec: 1 << 30, PerValue: 20 * time.Nanosecond, PerRow: 2 * time.Microsecond}
}

// Delay sleeps for the modelled cost of moving the given traffic.
func (w Wire) Delay(rows, values, bytes int64) {
	d := time.Duration(float64(bytes) / w.BytesPerSec * float64(time.Second))
	d += time.Duration(values) * w.PerValue
	d += time.Duration(rows) * w.PerRow
	if d > 0 {
		time.Sleep(d)
	}
}

// interleavedBestOf measures the paths round-robin (f0, f1, …, f0, f1, …)
// for three rounds so page-cache and allocator warm-up affect every path
// equally, and returns each path's best run.
func interleavedBestOf(fs ...func() (time.Duration, error)) ([]time.Duration, error) {
	best := make([]time.Duration, len(fs))
	for round := 0; round < 3; round++ {
		for i, f := range fs {
			d, err := f()
			if err != nil {
				return nil, err
			}
			if best[i] == 0 || d < best[i] {
				best[i] = d
			}
		}
	}
	return best, nil
}

// heapRowSource adapts a heap's FloatVec column to connector.RowSource.
type heapRowSource struct {
	scan    *table.Scanner
	featIdx int
}

func newHeapRowSource(h *table.Heap, featCol string) (*heapRowSource, error) {
	idx := h.Schema().ColIndex(featCol)
	if idx < 0 {
		return nil, fmt.Errorf("experiments: no column %q", featCol)
	}
	return &heapRowSource{scan: h.Scan(), featIdx: idx}, nil
}

// NextRow implements connector.RowSource.
func (s *heapRowSource) NextRow() ([]float32, bool, error) {
	t, ok, err := s.scan.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	return t[s.featIdx].Vec, true, nil
}

// fig2Workload is one bar group of Figure 2/3.
type figWorkload struct {
	model *nn.Model
	rows  int
	width int // flat feature width
	x     *tensor.Tensor
}

// runOurs measures the in-database path: heap scan → adaptive inference
// UDF over stored rows. Returns end-to-end latency.
func runOurs(pool *storage.BufferPool, heap *table.Heap, model *nn.Model, budget *memlimit.Budget, threshold int64, batch int) (time.Duration, int, error) {
	u := core.NewAdaptiveUDF(model, core.NewOptimizer(threshold), pool, budget)
	op, err := udf.NewInferOp(exec.NewHeapScan(heap), u, "features", batch)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	rows, err := exec.Collect(op)
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start), len(rows), nil
}

// runDLCentric measures the DL-centric path: heap scan → connector encode /
// wire / decode → external runtime inference. The session is pre-loaded
// (models stay resident in serving systems); transfer and inference are on
// the clock, as in the paper's measurements.
func runDLCentric(heap *table.Heap, width int, sess *dlruntime.Session, wire Wire) (time.Duration, int, error) {
	src, err := newHeapRowSource(heap, "features")
	if err != nil {
		return 0, 0, err
	}
	var stats connector.Stats
	start := time.Now()
	x, err := connector.Transfer(src, width, 1024, &stats)
	if err != nil {
		return 0, 0, err
	}
	rows, _, bytes := stats.Snapshot()
	wire.Delay(rows, rows*int64(width), bytes)
	out, err := sess.Infer(x)
	if err != nil {
		return 0, 0, err
	}
	// Results travel back across the wire too.
	wire.Delay(int64(out.Dim(0)), int64(out.Len()), out.Bytes())
	return time.Since(start), out.Dim(0), nil
}

// Fig2 reproduces Figure 2: latency of FFNN inference queries over data
// managed by the RDBMS — our adaptive in-database serving vs the DL-centric
// architecture on the Graph (TensorFlow-like) and Eager (PyTorch-like)
// profiles. Small models fit the memory threshold, so the optimizer fuses
// them into a single in-database UDF and the cross-system transfer becomes
// the baselines' bottleneck.
func Fig2(cfg Config) ([]Row, error) {
	rng := rand.New(rand.NewSource(cfg.seed()))
	rows := 20000
	encRows := 400
	if cfg.Quick {
		rows = 2000
		encRows = 60
	}
	workloads := []figWorkload{
		{model: nn.FraudFC(rng, 256), rows: rows, width: 28},
		{model: nn.FraudFC(rng, 512), rows: rows, width: 28},
		{model: nn.EncoderFC(rng), rows: encRows, width: 76},
	}
	for i := range workloads {
		workloads[i].x = data.Dense(cfg.seed()+int64(i), workloads[i].rows, workloads[i].width)
	}
	return runFig(cfg, "fig2", workloads, false)
}

// Fig3 reproduces Figure 3: the CNN counterpart, on DeepBench-CONV1.
// Images exceed the single-record limit, so they are stored as chunked
// tensors in the heap — as the paper loads samples into netsDB.
func Fig3(cfg Config) ([]Row, error) {
	rng := rand.New(rand.NewSource(cfg.seed()))
	batch := 4
	if cfg.Quick {
		batch = 1
	}
	m := nn.DeepBenchConv1(rng)
	x := data.Images(cfg.seed()+100, batch, 112, 64)
	w := figWorkload{model: m, rows: batch, width: 112 * 112 * 64, x: x.Reshape(batch, 112*112*64)}
	return runFig(cfg, "fig3", []figWorkload{w}, true)
}

// runFig executes one figure's comparison over its workloads.
func runFig(cfg Config, exp string, workloads []figWorkload, chunked bool) ([]Row, error) {
	dir, cleanup, err := cfg.workdir()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	wire := DefaultWire()
	var out []Row
	for wi, w := range workloads {
		pool, closeDB, err := newPoolAt(dir, fmt.Sprintf("%s-%d.db", exp, wi), 4096)
		if err != nil {
			return nil, err
		}
		if chunked {
			// Images exceed the single-record limit; all paths read the
			// same chunked representation from the heap, measured
			// interleaved so warm-up is shared.
			ch, err := storeTensorChunked(pool, w.x)
			if err != nil {
				return nil, err
			}
			oursFn := oursChunkedFn(pool, ch, w)
			graphFn, closeGraph, err := dlChunkedFn(ch, w, dlruntime.Graph, wire)
			if err != nil {
				return nil, err
			}
			eagerFn, closeEager, err := dlChunkedFn(ch, w, dlruntime.Eager, wire)
			if err != nil {
				return nil, err
			}
			lats, err := interleavedBestOf(oursFn, graphFn, eagerFn)
			closeGraph()
			closeEager()
			if err != nil {
				return nil, err
			}
			ours := Row{Exp: exp, Workload: w.model.Name(), System: "ours(in-db)", Batch: w.rows, Latency: lats[0], Status: "OK"}
			out = append(out, ours,
				Row{Exp: exp, Workload: w.model.Name(), System: dlName(dlruntime.Graph), Batch: w.rows, Latency: lats[1], Status: "OK", Note: speedupNote(lats[0], lats[1])},
				Row{Exp: exp, Workload: w.model.Name(), System: dlName(dlruntime.Eager), Batch: w.rows, Latency: lats[2], Status: "OK", Note: speedupNote(lats[0], lats[2])},
			)
			closeDB()
			continue
		}
		heap, err := storeFeatureTable(pool, w.x)
		if err != nil {
			return nil, err
		}
		oursFn := func() (time.Duration, error) {
			d, n, err := runOurs(pool, heap, w.model, memlimit.Unlimited(), 2<<30, 256)
			if err == nil && n != w.rows {
				return 0, fmt.Errorf("experiments: ours produced %d rows, want %d", n, w.rows)
			}
			return d, err
		}
		graphRT := dlruntime.New(dlruntime.Graph, 0)
		graphSess, err := graphRT.Load(w.model)
		if err != nil {
			return nil, err
		}
		eagerRT := dlruntime.New(dlruntime.Eager, 0)
		eagerSess, err := eagerRT.Load(w.model)
		if err != nil {
			return nil, err
		}
		dlFn := func(sess *dlruntime.Session) func() (time.Duration, error) {
			return func() (time.Duration, error) {
				d, _, err := runDLCentric(heap, w.width, sess, wire)
				return d, err
			}
		}
		lats, err := interleavedBestOf(oursFn, dlFn(graphSess), dlFn(eagerSess))
		graphSess.Close()
		eagerSess.Close()
		if err != nil {
			return nil, err
		}
		ours := Row{Exp: exp, Workload: w.model.Name(), System: "ours(in-db)", Batch: w.rows, Latency: lats[0], Status: "OK"}
		out = append(out, ours,
			Row{Exp: exp, Workload: w.model.Name(), System: dlName(dlruntime.Graph), Batch: w.rows, Latency: lats[1], Status: "OK", Note: speedupNote(lats[0], lats[1])},
			Row{Exp: exp, Workload: w.model.Name(), System: dlName(dlruntime.Eager), Batch: w.rows, Latency: lats[2], Status: "OK", Note: speedupNote(lats[0], lats[2])},
		)
		closeDB()
	}
	return out, nil
}

// oursChunkedFn builds the measured in-database path over a chunked store.
func oursChunkedFn(pool *storage.BufferPool, ch *table.Heap, w figWorkload) func() (time.Duration, error) {
	u := core.NewAdaptiveUDF(w.model, core.NewOptimizer(2<<30), pool, memlimit.Unlimited())
	return func() (time.Duration, error) {
		start := time.Now()
		x, err := loadTensorChunked(ch, w.rows, w.width)
		if err != nil {
			return 0, err
		}
		if _, err := u.Apply(x); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
}

// dlChunkedFn builds the measured DL-centric path over a chunked store.
// The returned closer releases the pre-loaded session.
func dlChunkedFn(ch *table.Heap, w figWorkload, profile dlruntime.Profile, wire Wire) (func() (time.Duration, error), func(), error) {
	rt := dlruntime.New(profile, 0)
	sess, err := rt.Load(w.model)
	if err != nil {
		return nil, nil, err
	}
	run := func() (time.Duration, error) {
		start := time.Now()
		x, err := loadTensorChunked(ch, w.rows, w.width)
		if err != nil {
			return 0, err
		}
		// Ship rows across the connector into the runtime's layout.
		var stats connector.Stats
		xr, err := connector.Transfer(connector.NewTensorSource(x), w.width, 1, &stats)
		if err != nil {
			return 0, err
		}
		rows, _, bytes := stats.Snapshot()
		wire.Delay(rows, rows*int64(w.width), bytes)
		shape := append([]int(nil), w.model.InShape...)
		shape[0] = w.rows
		out, err := sess.Infer(xr.Reshape(shape...))
		if err != nil {
			return 0, err
		}
		wire.Delay(int64(w.rows), int64(out.Len()), out.Bytes())
		return time.Since(start), nil
	}
	return run, func() { sess.Close() }, nil
}

func dlName(p dlruntime.Profile) string {
	if p == dlruntime.Graph {
		return "dl-centric(graph)"
	}
	return "dl-centric(eager)"
}

func speedupNote(ours, theirs time.Duration) string {
	if ours <= 0 {
		return ""
	}
	return fmt.Sprintf("ours is %.2fx faster", float64(theirs)/float64(ours))
}
