package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"tensorbase/internal/core"
	"tensorbase/internal/data"
	"tensorbase/internal/dlruntime"
	"tensorbase/internal/memlimit"
	"tensorbase/internal/nn"
	"tensorbase/internal/storage"
	"tensorbase/internal/tensor"
)

// Table 3: large-scale model inference under a memory budget. The paper
// runs Amazon-14k-FC (batches 1000/8000) and LandCover (batches 1/2) on a
// 61 GiB box with a 2 GiB operator threshold and a 20 GiB buffer pool; the
// whole-tensor systems (the external runtimes and the in-database
// UDF-centric path) OOM where an operator's working set exceeds memory,
// while the relation-centric plan streams tensor blocks through the buffer
// pool and completes.
//
// We scale each workload by a divisor and scale the memory budget, the
// optimizer threshold, and the buffer pool with it, preserving the
// working-set-to-budget ratios that decide who OOMs. Accounting rules:
//
//   - external Graph runtime (TensorFlow-like): params + peak activations;
//   - external Eager runtime (PyTorch-like): params + 1.5× activations
//     (eager op workspaces);
//   - in-db UDF-centric: the paper's operator estimate plus tuple
//     materialisation of the result (the output lives in database pages);
//   - in-db relation-centric: the aggregation state (result blocks) plus a
//     constant number of operand blocks.
type table3Workload struct {
	name      string
	model     *nn.Model
	makeInput func(batch int) *tensor.Tensor
	batches   []int
	budget    int64 // machine memory, scaled
	threshold int64 // optimizer memory-limit threshold, scaled
	frames    int   // buffer pool frames (scaled 20 GiB pool)
	outBytes  func(batch int) int64
}

// Table3 reproduces Table 3.
func Table3(cfg Config) ([]Row, error) {
	rng := rand.New(rand.NewSource(cfg.seed()))

	var works []table3Workload
	if cfg.Quick {
		const amazonScale, landScale = 512, 20
		amazon := nn.Amazon14kFC(rng, amazonScale)
		in, _, out := nn.Amazon14kDims(amazonScale)
		works = append(works, table3Workload{
			name:  "Amazon-14k-FC",
			model: amazon,
			makeInput: func(batch int) *tensor.Tensor {
				return data.Dense(cfg.seed()+1, batch, in)
			},
			batches:   []int{100, 800},
			budget:    10 << 20,
			threshold: 2 << 20,
			frames:    1200,
			outBytes:  func(batch int) int64 { return int64(batch) * int64(out) * 4 },
		})
		land := nn.LandCover(rng, landScale)
		hw, oc := nn.LandCoverDims(landScale)
		works = append(works, table3Workload{
			name:  "LandCover",
			model: land,
			makeInput: func(batch int) *tensor.Tensor {
				return data.Images(cfg.seed()+2, batch, hw, 3)
			},
			batches:   []int{1, 2},
			budget:    6922240, // 6.6 MiB
			threshold: 1 << 20,
			frames:    640,
			outBytes:  func(batch int) int64 { return int64(batch) * int64(hw) * int64(hw) * int64(oc) * 4 },
		})
	} else {
		const amazonScale, landScale = 256, 10
		amazon := nn.Amazon14kFC(rng, amazonScale)
		in, _, out := nn.Amazon14kDims(amazonScale)
		works = append(works, table3Workload{
			name:  "Amazon-14k-FC",
			model: amazon,
			makeInput: func(batch int) *tensor.Tensor {
				return data.Dense(cfg.seed()+1, batch, in)
			},
			batches:   []int{1000, 8000},
			budget:    64 << 20, // 61 GiB scaled
			threshold: 8 << 20,  // 2 GiB scaled
			frames:    2400,     // 20 GiB buffer pool scaled
			outBytes:  func(batch int) int64 { return int64(batch) * int64(out) * 4 },
		})
		land := nn.LandCover(rng, landScale)
		hw, oc := nn.LandCoverDims(landScale)
		works = append(works, table3Workload{
			name:  "LandCover",
			model: land,
			makeInput: func(batch int) *tensor.Tensor {
				return data.Images(cfg.seed()+2, batch, hw, 3)
			},
			batches:   []int{1, 2},
			budget:    52 << 20,
			threshold: 8 << 20,
			frames:    640,
			outBytes:  func(batch int) int64 { return int64(batch) * int64(hw) * int64(hw) * int64(oc) * 4 },
		})
	}

	dir, cleanup, err := cfg.workdir()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	var out []Row
	for wi, w := range works {
		for _, batch := range w.batches {
			x := w.makeInput(batch)
			base := Row{Exp: "table3", Workload: w.name, Batch: batch}

			// Ours: adaptive plan over tensor-block relations.
			pool, closeDB, err := newPoolAt(dir, fmt.Sprintf("t3-%d-%d.db", wi, batch), w.frames)
			if err != nil {
				return nil, err
			}
			r, err := runTable3Ours(pool, w, batch, x, base)
			closeDB()
			if err != nil {
				return nil, err
			}
			out = append(out, r)

			// In-db UDF-centric (whole tensor).
			r, err = runTable3UDF(w, batch, x, base)
			if err != nil {
				return nil, err
			}
			out = append(out, r)

			// External runtimes across the connector.
			for _, p := range []dlruntime.Profile{dlruntime.Graph, dlruntime.Eager} {
				r, err = runTable3DL(w, batch, x, p, base)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
		}
	}
	return out, nil
}

func runTable3Ours(pool *storage.BufferPool, w table3Workload, batch int, x *tensor.Tensor, base Row) (Row, error) {
	base.System = "ours(adaptive)"
	budget := memlimit.NewBudget(w.budget)
	ex := core.NewExecutor(pool, budget)
	plan, err := core.NewOptimizer(w.threshold).Plan(w.model, batch)
	if err != nil {
		return Row{}, err
	}
	start := time.Now()
	res, err := ex.Run(plan, x.Clone())
	if err != nil {
		return oomRow(base, err)
	}
	base.Latency = time.Since(start)
	base.Status = "OK"
	base.Note = fmt.Sprintf("%d relational ops, %d result rows", plan.NumRelational(), res.Rows())
	return base, nil
}

// runTable3UDF measures the forced UDF-centric (whole-tensor, in-database)
// execution: the operator-estimate reservation plus tuple materialisation
// of the result in database pages.
func runTable3UDF(w table3Workload, batch int, x *tensor.Tensor, base Row) (Row, error) {
	base.System = "udf-centric"
	budget := memlimit.NewBudget(w.budget)
	peak, err := w.model.MaxOpBytes(batch)
	if err != nil {
		return Row{}, err
	}
	start := time.Now()
	res, err := budget.TryReserve(peak + w.outBytes(batch))
	if err != nil {
		return oomRow(base, err)
	}
	defer res.Close()
	out := w.model.Forward(x.Clone())
	base.Latency = time.Since(start)
	base.Status = "OK"
	base.Note = fmt.Sprintf("%d output elems", out.Len())
	return base, nil
}

func runTable3DL(w table3Workload, batch int, x *tensor.Tensor, p dlruntime.Profile, base Row) (Row, error) {
	base.System = dlName(p)
	rt := dlruntime.New(p, w.budget)
	rt.SetOverheads(dlruntime.Overheads{}) // memory behaviour only; keep defaults minimal
	sess, err := rt.Load(w.model)
	if err != nil {
		return oomRow(base, err)
	}
	defer sess.Close()
	start := time.Now()
	out, err := sess.Infer(x.Clone())
	if err != nil {
		return oomRow(base, err)
	}
	base.Latency = time.Since(start)
	base.Status = "OK"
	base.Note = fmt.Sprintf("%d output elems", out.Len())
	return base, nil
}
