// Package dlruntime simulates the decoupled external DL runtime of the
// paper's DL-centric baseline (TensorFlow / PyTorch). It shares the tensor
// kernels with the in-database paths — the simulation is about *system
// structure*, not arithmetic:
//
//   - whole-tensor execution: every operator materialises its full input,
//     parameters and output, accounted against a hard memory budget, so
//     over-budget workloads fail with memlimit.ErrOOM exactly where the
//     paper's baselines OOM (Table 3);
//   - runtime profiles: Graph (≈ TensorFlow: one-time session build cost,
//     small fixed per-call overhead) and Eager (≈ PyTorch: no build cost,
//     per-operator dispatch overhead);
//   - data arrives only through the connector: the runtime has no access to
//     database pages, reproducing the cross-system transfer cost that
//     dominates small-model inference (Fig. 2/3).
package dlruntime

import (
	"fmt"
	"time"

	"tensorbase/internal/memlimit"
	"tensorbase/internal/nn"
	"tensorbase/internal/tensor"
)

// Profile selects the simulated runtime's execution style.
type Profile int

// Runtime profiles.
const (
	// Graph builds a static graph once per session (build cost at load)
	// and runs it with a small fixed per-call overhead, like TensorFlow.
	Graph Profile = iota
	// Eager dispatches operators one by one with per-op overhead, like
	// PyTorch eager mode.
	Eager
)

// String implements fmt.Stringer.
func (p Profile) String() string {
	if p == Graph {
		return "graph"
	}
	return "eager"
}

// Overheads configure the simulated dispatch costs. Zero values disable a
// component; defaults follow DefaultOverheads.
type Overheads struct {
	// SessionBuildPerOp is charged once at session creation per operator
	// (Graph profile only).
	SessionBuildPerOp time.Duration
	// CallFixed is charged once per Infer call (Graph profile).
	CallFixed time.Duration
	// DispatchPerOp is charged per operator per Infer call (Eager).
	DispatchPerOp time.Duration
	// ActivationFactor scales the activation working set charged per
	// Infer call; 0 means the profile default (1.0 for Graph, 1.5 for
	// Eager — eager mode keeps extra per-operator workspaces alive,
	// which is why PyTorch OOMs in Table 3 where TensorFlow does not).
	ActivationFactor float64
}

// DefaultOverheads returns overheads representative of framework dispatch
// costs on CPU (order of tens of microseconds per op).
func DefaultOverheads() Overheads {
	return Overheads{
		SessionBuildPerOp: 2 * time.Millisecond,
		CallFixed:         200 * time.Microsecond,
		DispatchPerOp:     60 * time.Microsecond,
	}
}

// Runtime is a simulated external DL system with its own memory budget.
type Runtime struct {
	profile   Profile
	budget    *memlimit.Budget
	overheads Overheads
}

// New returns a runtime with the given profile and memory budget in bytes
// (<= 0 means unlimited).
func New(profile Profile, memBytes int64) *Runtime {
	return &Runtime{
		profile:   profile,
		budget:    memlimit.NewBudget(memBytes),
		overheads: DefaultOverheads(),
	}
}

// SetOverheads overrides the simulated dispatch costs (for tests and
// ablations).
func (r *Runtime) SetOverheads(o Overheads) { r.overheads = o }

// Budget exposes the runtime's memory budget.
func (r *Runtime) Budget() *memlimit.Budget { return r.budget }

// Profile returns the runtime's profile.
func (r *Runtime) Profile() Profile { return r.profile }

// Session is a loaded model inside the runtime. Parameters stay resident
// (reserved against the budget) until Close.
type Session struct {
	rt     *Runtime
	model  *nn.Model
	params *memlimit.Reservation
	closed bool
}

// Load copies a model into the runtime, reserving its parameter memory and
// (for the Graph profile) paying the one-time session build cost.
func (r *Runtime) Load(m *nn.Model) (*Session, error) {
	res, err := r.budget.TryReserve(m.ParamBytes())
	if err != nil {
		return nil, fmt.Errorf("dlruntime: loading %s: %w", m.Name(), err)
	}
	if r.profile == Graph && r.overheads.SessionBuildPerOp > 0 {
		time.Sleep(time.Duration(len(m.Layers)) * r.overheads.SessionBuildPerOp)
	}
	return &Session{rt: r, model: m, params: res}, nil
}

// Model returns the session's model.
func (s *Session) Model() *nn.Model { return s.model }

// Close releases the session's parameter memory.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.params.Close()
}

// peakActivationBytes estimates the activation working set of whole-tensor
// execution: input plus every intermediate output resident at once is
// pessimistic, while max(in+out) per op is optimistic; frameworks sit at
// "all activations of the two live ops". We charge the maximum over ops of
// (operator estimate minus its parameters), which matches the paper's
// operator-footprint rule.
func peakActivationBytes(m *nn.Model, batch int) (int64, error) {
	ests, err := m.MemEstimates(batch)
	if err != nil {
		return 0, err
	}
	var peak int64
	for i, e := range ests {
		b := e.Bytes - m.Layers[i].ParamBytes()
		if b > peak {
			peak = b
		}
	}
	return peak, nil
}

// Infer runs the model over a batch that must already be inside the runtime
// (transferred via the connector). It reserves the activation working set
// for the call and returns memlimit.ErrOOM if the budget cannot hold it.
func (s *Session) Infer(x *tensor.Tensor) (*tensor.Tensor, error) {
	if s.closed {
		return nil, fmt.Errorf("dlruntime: session for %s is closed", s.model.Name())
	}
	batch := x.Dim(0)
	peak, err := peakActivationBytes(s.model, batch)
	if err != nil {
		return nil, err
	}
	factor := s.rt.overheads.ActivationFactor
	if factor <= 0 {
		factor = 1.0
		if s.rt.profile == Eager {
			factor = 1.5
		}
	}
	peak = int64(float64(peak) * factor)
	res, err := s.rt.budget.TryReserve(peak)
	if err != nil {
		return nil, fmt.Errorf("dlruntime: inferring %s batch %d: %w", s.model.Name(), batch, err)
	}
	defer res.Close()

	switch s.rt.profile {
	case Graph:
		if s.rt.overheads.CallFixed > 0 {
			time.Sleep(s.rt.overheads.CallFixed)
		}
	case Eager:
		if s.rt.overheads.DispatchPerOp > 0 {
			time.Sleep(time.Duration(len(s.model.Layers)) * s.rt.overheads.DispatchPerOp)
		}
	}
	return s.model.Forward(x), nil
}
