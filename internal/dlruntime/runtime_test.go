package dlruntime

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"tensorbase/internal/memlimit"
	"tensorbase/internal/nn"
	"tensorbase/internal/tensor"
)

func noOverheads(r *Runtime) *Runtime {
	r.SetOverheads(Overheads{})
	return r
}

func TestLoadReservesParamsAndCloseReleases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := nn.FraudFC(rng, 64)
	rt := noOverheads(New(Eager, 10<<20))
	s, err := rt.Load(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Budget().Reserved(); got != m.ParamBytes() {
		t.Fatalf("reserved %d, want %d", got, m.ParamBytes())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := rt.Budget().Reserved(); got != 0 {
		t.Fatalf("reserved %d after close", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
}

func TestLoadOOMWhenParamsExceedBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := nn.FraudFC(rng, 512)
	rt := noOverheads(New(Graph, 1024)) // 1 KiB budget
	if _, err := rt.Load(m); !errors.Is(err, memlimit.ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
}

func TestInferMatchesDirectForward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := nn.FraudFC(rng, 128)
	rt := noOverheads(New(Eager, 0))
	s, err := rt.Load(m)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	x := tensor.New(5, 28)
	for i := range x.Data() {
		x.Data()[i] = rng.Float32()
	}
	got, err := s.Infer(x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	want := m.Forward(x.Clone())
	if !got.AlmostEqual(want, 1e-6) {
		t.Fatal("runtime inference differs from direct forward")
	}
}

func TestInferOOMOnLargeBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := nn.FraudFC(rng, 256)
	// Budget fits the parameters plus a tiny batch, not a big one.
	budget := m.ParamBytes() + 64*1024
	rt := noOverheads(New(Graph, budget))
	s, err := rt.Load(m)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Infer(tensor.New(4, 28)); err != nil {
		t.Fatalf("small batch should fit: %v", err)
	}
	if _, err := s.Infer(tensor.New(100000, 28)); !errors.Is(err, memlimit.ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
	// The failed call must not leak its reservation.
	if got := rt.Budget().Reserved(); got != m.ParamBytes() {
		t.Fatalf("reserved %d after OOM, want %d", got, m.ParamBytes())
	}
}

func TestInferAfterCloseFails(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := nn.FraudFC(rng, 16)
	rt := noOverheads(New(Eager, 0))
	s, err := rt.Load(m)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Infer(tensor.New(1, 28)); err == nil {
		t.Fatal("infer on closed session must error")
	}
}

func TestGraphProfilePaysSessionBuildOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := nn.FraudFC(rng, 16) // 4 layers
	rt := New(Graph, 0)
	rt.SetOverheads(Overheads{SessionBuildPerOp: 5 * time.Millisecond})
	start := time.Now()
	s, err := rt.Load(m)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	buildTime := time.Since(start)
	if buildTime < 20*time.Millisecond {
		t.Fatalf("session build took %v, want >= 20ms (4 ops × 5ms)", buildTime)
	}
	// Inference itself has no per-op dispatch in Graph mode.
	start = time.Now()
	if _, err := s.Infer(tensor.New(1, 28)); err != nil {
		t.Fatal(err)
	}
	if inferTime := time.Since(start); inferTime > buildTime {
		t.Fatalf("steady-state infer (%v) slower than session build (%v)", inferTime, buildTime)
	}
}

func TestEagerProfilePaysPerOpDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := nn.FraudFC(rng, 16) // 4 layers
	rt := New(Eager, 0)
	rt.SetOverheads(Overheads{DispatchPerOp: 3 * time.Millisecond})
	s, err := rt.Load(m)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	start := time.Now()
	if _, err := s.Infer(tensor.New(1, 28)); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < 12*time.Millisecond {
		t.Fatalf("eager infer took %v, want >= 12ms (4 ops × 3ms)", got)
	}
}

func TestProfileString(t *testing.T) {
	if Graph.String() != "graph" || Eager.String() != "eager" {
		t.Fatal("profile names wrong")
	}
}
