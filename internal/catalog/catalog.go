// Package catalog is the database's metadata store: registered tables
// (schema + heap location) and registered models. Models support multiple
// versions with accuracy/size metadata, enabling the accuracy-aware model
// selection of Sec. 4 — the storage optimizer keeps compressed variants of
// a model and the query layer picks the smallest version that satisfies an
// accuracy SLA.
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"tensorbase/internal/nn"
	"tensorbase/internal/table"
)

// TableEntry describes one registered table.
type TableEntry struct {
	Name string
	Heap *table.Heap
}

// ModelVersion is one stored variant of a model: the original or a
// compressed (pruned/quantised) edition with its measured trade-off.
type ModelVersion struct {
	Model *nn.Model
	// Tag labels the variant ("original", "quantized-8bit", ...).
	Tag string
	// Accuracy is the measured accuracy of this variant on its
	// validation set, in [0,1]; 0 if unmeasured.
	Accuracy float64
	// Bytes is the parameter size of this variant.
	Bytes int64
}

// ModelEntry groups a model's versions under one name. Versions[0] is the
// original.
type ModelEntry struct {
	Name     string
	Versions []ModelVersion
	// TrainedOn optionally records the training table, binding the model
	// to its data per Sec. 4.
	TrainedOn string
}

// Catalog is a thread-safe registry of tables and models.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*TableEntry
	models map[string]*ModelEntry
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: make(map[string]*TableEntry),
		models: make(map[string]*ModelEntry),
	}
}

// CreateTable registers heap under name.
func (c *Catalog) CreateTable(name string, heap *table.Heap) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if name == "" {
		return fmt.Errorf("catalog: empty table name")
	}
	if _, dup := c.tables[name]; dup {
		return fmt.Errorf("catalog: table %q already exists", name)
	}
	c.tables[name] = &TableEntry{Name: name, Heap: heap}
	return nil
}

// Table returns the named table.
func (c *Catalog) Table(name string) (*TableEntry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no table %q", name)
	}
	return t, nil
}

// DropTable removes the named table from the catalog. Storage reclamation
// is the engine's job: it walks the heap's page chain and hands every page
// to the disk free list before calling this.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; !ok {
		return fmt.Errorf("catalog: no table %q", name)
	}
	delete(c.tables, name)
	return nil
}

// Tables returns the registered table names, sorted.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DropModel removes the named model (all versions) from the catalog.
// Weight-block reclamation is the engine's job: it releases the model's
// manifest references and sweeps the block store after calling this.
func (c *Catalog) DropModel(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.models[name]; !ok {
		return fmt.Errorf("catalog: no model %q", name)
	}
	delete(c.models, name)
	return nil
}

// RegisterModel stores m as the original version under its model name.
func (c *Catalog) RegisterModel(m *nn.Model, accuracy float64, trainedOn string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	name := m.Name()
	if name == "" {
		return fmt.Errorf("catalog: model has no name")
	}
	if _, dup := c.models[name]; dup {
		return fmt.Errorf("catalog: model %q already registered", name)
	}
	c.models[name] = &ModelEntry{
		Name:      name,
		TrainedOn: trainedOn,
		Versions: []ModelVersion{{
			Model:    m,
			Tag:      "original",
			Accuracy: accuracy,
			Bytes:    m.ParamBytes(),
		}},
	}
	return nil
}

// AddVersion attaches a compressed variant to a registered model, sized by
// its in-memory parameters.
func (c *Catalog) AddVersion(name string, m *nn.Model, tag string, accuracy float64) error {
	return c.AddVersionSized(name, m, tag, accuracy, m.ParamBytes())
}

// AddVersionSized attaches a variant with an explicit storage size —
// quantized models occupy the same RAM once loaded but far less storage, so
// the size the SLA selector minimises is the caller's to define.
func (c *Catalog) AddVersionSized(name string, m *nn.Model, tag string, accuracy float64, bytes int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.models[name]
	if !ok {
		return fmt.Errorf("catalog: no model %q", name)
	}
	for _, v := range e.Versions {
		if v.Tag == tag {
			return fmt.Errorf("catalog: model %q already has version %q", name, tag)
		}
	}
	e.Versions = append(e.Versions, ModelVersion{
		Model: m, Tag: tag, Accuracy: accuracy, Bytes: bytes,
	})
	return nil
}

// Model returns the original version of the named model.
func (c *Catalog) Model(name string) (*nn.Model, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.models[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no model %q", name)
	}
	return e.Versions[0].Model, nil
}

// ModelEntryFor returns the full entry for the named model.
func (c *Catalog) ModelEntryFor(name string) (*ModelEntry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.models[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no model %q", name)
	}
	return e, nil
}

// SelectVersion implements accuracy-aware version selection: among the
// versions meeting minAccuracy, it returns the smallest by parameter size;
// versions with unmeasured accuracy qualify only when minAccuracy is 0.
func (c *Catalog) SelectVersion(name string, minAccuracy float64) (*ModelVersion, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.models[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no model %q", name)
	}
	var best *ModelVersion
	for i := range e.Versions {
		v := &e.Versions[i]
		if v.Accuracy < minAccuracy {
			continue
		}
		if best == nil || v.Bytes < best.Bytes {
			best = v
		}
	}
	if best == nil {
		return nil, fmt.Errorf("catalog: no version of %q meets accuracy %.3f", name, minAccuracy)
	}
	return best, nil
}

// Models returns the registered model names, sorted.
func (c *Catalog) Models() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.models))
	for n := range c.models {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
