package catalog

import (
	"sort"
	"sync"

	"tensorbase/internal/table"
)

// ShardInfo records how one table is hash-partitioned: the key column whose
// hash picks the shard, and the table's schema (the coordinator needs it to
// coerce key literals and split INSERT rows without a round-trip).
type ShardInfo struct {
	Key    string
	Schema *table.Schema
}

// ShardMap is the catalog's record of table → shard-key placement across a
// fixed number of shards. It lives on the scatter-gather coordinator; each
// shard node's own Catalog keeps holding that node's local tables.
type ShardMap struct {
	mu     sync.RWMutex
	shards int
	tables map[string]ShardInfo
}

// NewShardMap returns an empty map over shards nodes.
func NewShardMap(shards int) *ShardMap {
	return &ShardMap{shards: shards, tables: make(map[string]ShardInfo)}
}

// Shards returns the shard count.
func (m *ShardMap) Shards() int { return m.shards }

// Set records table as hash-partitioned by key.
func (m *ShardMap) Set(tbl, key string, schema *table.Schema) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tables[tbl] = ShardInfo{Key: key, Schema: schema}
}

// Info returns the placement for tbl.
func (m *ShardMap) Info(tbl string) (ShardInfo, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	info, ok := m.tables[tbl]
	return info, ok
}

// Drop forgets tbl.
func (m *ShardMap) Drop(tbl string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.tables, tbl)
}

// Tables returns the sharded table names, sorted.
func (m *ShardMap) Tables() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.tables))
	for n := range m.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
