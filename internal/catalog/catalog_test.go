package catalog

import (
	"math/rand"
	"path/filepath"
	"testing"

	"tensorbase/internal/nn"
	"tensorbase/internal/storage"
	"tensorbase/internal/table"
)

func newHeap(t *testing.T) *table.Heap {
	t.Helper()
	d, err := storage.OpenDisk(filepath.Join(t.TempDir(), "c.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	pool := storage.NewBufferPool(d, 8)
	h, err := table.NewHeap(pool, table.MustSchema(table.Column{Name: "id", Type: table.Int64}))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestTableLifecycle(t *testing.T) {
	c := New()
	h := newHeap(t)
	if err := c.CreateTable("t1", h); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("t1", h); err == nil {
		t.Fatal("duplicate table must error")
	}
	if err := c.CreateTable("", h); err == nil {
		t.Fatal("empty name must error")
	}
	e, err := c.Table("t1")
	if err != nil || e.Heap != h {
		t.Fatalf("Table: %v", err)
	}
	if _, err := c.Table("ghost"); err == nil {
		t.Fatal("missing table must error")
	}
	if got := c.Tables(); len(got) != 1 || got[0] != "t1" {
		t.Fatalf("Tables = %v", got)
	}
	if err := c.DropTable("t1"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("t1"); err == nil {
		t.Fatal("double drop must error")
	}
}

func TestModelRegistration(t *testing.T) {
	c := New()
	rng := rand.New(rand.NewSource(1))
	m := nn.FraudFC(rng, 32)
	if err := c.RegisterModel(m, 0.97, "txns"); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterModel(m, 0.97, ""); err == nil {
		t.Fatal("duplicate model must error")
	}
	got, err := c.Model(m.Name())
	if err != nil || got != m {
		t.Fatalf("Model: %v", err)
	}
	e, err := c.ModelEntryFor(m.Name())
	if err != nil {
		t.Fatal(err)
	}
	if e.TrainedOn != "txns" || len(e.Versions) != 1 || e.Versions[0].Tag != "original" {
		t.Fatalf("entry = %+v", e)
	}
	if got := c.Models(); len(got) != 1 {
		t.Fatalf("Models = %v", got)
	}
}

func TestVersionSelectionByAccuracySLA(t *testing.T) {
	c := New()
	rng := rand.New(rand.NewSource(2))
	orig := nn.FraudFC(rng, 256)
	small := nn.FraudFC(rng, 64)
	small.ModelName = "Fraud-FC-256" // same logical model, compressed
	tiny := nn.FraudFC(rng, 16)

	if err := c.RegisterModel(orig, 0.98, ""); err != nil {
		t.Fatal(err)
	}
	if err := c.AddVersion(orig.Name(), small, "pruned-64", 0.96); err != nil {
		t.Fatal(err)
	}
	if err := c.AddVersion(orig.Name(), tiny, "pruned-16", 0.90); err != nil {
		t.Fatal(err)
	}
	if err := c.AddVersion(orig.Name(), tiny, "pruned-16", 0.90); err == nil {
		t.Fatal("duplicate version tag must error")
	}

	// SLA 0.95: the pruned-64 variant is the smallest that qualifies.
	v, err := c.SelectVersion(orig.Name(), 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if v.Tag != "pruned-64" {
		t.Fatalf("selected %q, want pruned-64", v.Tag)
	}
	// SLA 0.85: the tiniest qualifies.
	v, err = c.SelectVersion(orig.Name(), 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if v.Tag != "pruned-16" {
		t.Fatalf("selected %q, want pruned-16", v.Tag)
	}
	// SLA 0.99: nothing qualifies.
	if _, err := c.SelectVersion(orig.Name(), 0.99); err == nil {
		t.Fatal("impossible SLA must error")
	}
	if _, err := c.SelectVersion("ghost", 0); err == nil {
		t.Fatal("missing model must error")
	}
}

func TestAddVersionToMissingModel(t *testing.T) {
	c := New()
	rng := rand.New(rand.NewSource(3))
	if err := c.AddVersion("ghost", nn.FraudFC(rng, 16), "v", 0.5); err == nil {
		t.Fatal("version on missing model must error")
	}
}
