// Package cache implements the RDBMS-integrated inference-result cache of
// Sec. 5, validated in Sec. 7.2.2: feature vectors of previously answered
// inference requests are indexed in an approximate-nearest-neighbour
// structure (HNSW by default), and a new request whose features fall within
// a distance threshold of a cached entry reuses that entry's prediction
// instead of running the model. The package also provides the Monte-Carlo
// agreement estimator and the SLA-aware adaptive policy the paper proposes
// for deciding whether caching is acceptable for an application.
package cache

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"tensorbase/internal/ann"
	"tensorbase/internal/lifecycle"
	"tensorbase/internal/nn"
	"tensorbase/internal/tensor"
)

// ResultCache maps feature vectors to cached prediction vectors through an
// ANN index. It is safe for concurrent use: lookups run the ANN search under
// a read lock so they do not serialise behind each other, only inserts take
// the write lock, and duplicate in-flight misses can be collapsed with the
// single-flight protocol (ProbeFlight).
type ResultCache struct {
	mu         sync.RWMutex // guards index structure and preds map
	index      ann.Index
	dim        int
	maxDist    float64 // squared L2 admission threshold
	maxEntries int     // 0 = unbounded
	preds      map[int64][]float32
	exact      map[string]int64 // featKey → id: O(1) path for identical repeats
	nextID     int64

	hits     atomic.Int64
	misses   atomic.Int64
	shared   atomic.Int64
	rejected atomic.Int64

	fmu     sync.Mutex // guards flights, independent of mu
	flights map[string]*flight
}

// New returns a cache over index for dim-wide features. A lookup hits when
// the nearest cached entry is within maxSquaredDist.
func New(index ann.Index, dim int, maxSquaredDist float64) (*ResultCache, error) {
	if index == nil {
		return nil, fmt.Errorf("cache: nil index")
	}
	if dim < 1 {
		return nil, fmt.Errorf("cache: dimension %d < 1", dim)
	}
	if maxSquaredDist < 0 {
		return nil, fmt.Errorf("cache: negative distance threshold %g", maxSquaredDist)
	}
	return &ResultCache{
		index:   index,
		dim:     dim,
		maxDist: maxSquaredDist,
		preds:   make(map[int64][]float32),
		exact:   make(map[string]int64),
		flights: make(map[string]*flight),
	}, nil
}

// SetMaxEntries caps the number of cached entries; once the index holds n
// vectors further inserts are rejected (counted in Counters().Rejected).
// n <= 0 removes the cap.
func (c *ResultCache) SetMaxEntries(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		n = 0
	}
	c.maxEntries = n
}

// NewHNSW returns a cache backed by a default-tuned HNSW index.
func NewHNSW(dim int, maxSquaredDist float64) (*ResultCache, error) {
	return New(ann.NewHNSW(dim, ann.HNSWConfig{Seed: 1}), dim, maxSquaredDist)
}

// Len returns the number of cached entries.
func (c *ResultCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.index.Len()
}

// Lookup returns the cached prediction for the nearest entry within the
// distance threshold, or ok=false. The returned slice must not be mutated.
// Concurrent lookups proceed in parallel (read lock): only inserts exclude
// them. An identical repeat of a cached feature vector is answered from an
// exact-match map in O(1); the ANN search only runs for near-duplicates.
func (c *ResultCache) Lookup(features []float32) (pred []float32, ok bool, err error) {
	if len(features) != c.dim {
		return nil, false, fmt.Errorf("cache: feature width %d, want %d", len(features), c.dim)
	}
	return c.lookupKeyed(features, featKey(features))
}

func (c *ResultCache) lookupKeyed(features []float32, key string) (pred []float32, ok bool, err error) {
	c.mu.RLock()
	if id, hit := c.exact[key]; hit {
		p := c.preds[id]
		c.mu.RUnlock()
		c.hits.Add(1)
		return p, true, nil
	}
	if c.maxDist == 0 {
		// Exact-only mode: a zero-distance ANN hit implies bit-identical
		// features (modulo ±0), which the exact map already answered, so
		// skip the beam search and make misses O(1) too.
		c.mu.RUnlock()
		c.misses.Add(1)
		return nil, false, nil
	}
	res, err := c.index.Search(features, 1)
	var p []float32
	found := false
	if err == nil && len(res) > 0 && res[0].Dist <= c.maxDist {
		p, found = c.preds[res[0].ID]
	}
	c.mu.RUnlock()
	if err != nil {
		return nil, false, err
	}
	if !found {
		c.misses.Add(1)
		return nil, false, nil
	}
	c.hits.Add(1)
	return p, true, nil
}

// Insert caches prediction under the given features. When the entry cap is
// reached the insert is silently rejected (admission control: HNSW does not
// support deletion, so the cache stops growing instead of evicting).
func (c *ResultCache) Insert(features, prediction []float32) error {
	if len(features) != c.dim {
		return fmt.Errorf("cache: feature width %d, want %d", len(features), c.dim)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxEntries > 0 && c.index.Len() >= c.maxEntries {
		c.rejected.Add(1)
		return nil
	}
	id := c.nextID
	c.nextID++
	if err := c.index.Add(id, features); err != nil {
		return err
	}
	c.preds[id] = append([]float32(nil), prediction...)
	c.exact[featKey(features)] = id
	return nil
}

// Stats returns cumulative hit and miss counts.
func (c *ResultCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Counters is a full snapshot of the cache's cumulative counters.
type Counters struct {
	Hits     int64 // lookups answered from the cache
	Misses   int64 // lookups that fell through to the model
	Shared   int64 // misses that reused another request's in-flight result
	Rejected int64 // inserts dropped by the max-entries cap
	Entries  int   // current cached entries
}

// Counters returns a snapshot of all cumulative counters.
func (c *ResultCache) Counters() Counters {
	return Counters{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Shared:   c.shared.Load(),
		Rejected: c.rejected.Load(),
		Entries:  c.Len(),
	}
}

// flight is one in-progress model computation for a feature key.
type flight struct {
	done chan struct{}
	pred []float32
	err  error
}

// Flight is a single-flight handle for a cache miss. Exactly one prober of a
// given feature vector becomes the leader (Leader() true) and must settle
// the flight with Commit or Cancel; every other concurrent prober of the
// same features receives a follower handle whose Wait blocks until the
// leader settles.
//
// Deadlock rule for batched callers holding several handles: settle all
// owned leader flights before Waiting on any follower handle. Cyclic waits
// are impossible then, because no goroutine waits while another's result
// depends on it.
type Flight struct {
	c      *ResultCache
	key    string
	f      *flight
	leader bool
}

// featKey is the exact-match single-flight key: the raw bit pattern of the
// feature vector.
func featKey(v []float32) string {
	b := make([]byte, len(v)*4)
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(x))
	}
	return string(b)
}

// ProbeFlight is the single-flight lookup: a hit returns the cached
// prediction directly (fl == nil); a miss returns a Flight handle that is
// either a leadership claim (run the model, then Commit) or a ticket to
// Wait for the identical in-flight request.
func (c *ResultCache) ProbeFlight(features []float32) (pred []float32, ok bool, fl *Flight, err error) {
	if len(features) != c.dim {
		return nil, false, nil, fmt.Errorf("cache: feature width %d, want %d", len(features), c.dim)
	}
	key := featKey(features)
	pred, ok, err = c.lookupKeyed(features, key)
	if err != nil || ok {
		return pred, ok, nil, err
	}
	c.fmu.Lock()
	if f, inflight := c.flights[key]; inflight {
		c.fmu.Unlock()
		return nil, false, &Flight{c: c, key: key, f: f}, nil
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.fmu.Unlock()
	return nil, false, &Flight{c: c, key: key, f: f, leader: true}, nil
}

// Leader reports whether this handle owns the computation.
func (fl *Flight) Leader() bool { return fl.leader }

// Commit publishes the leader's prediction to all waiting followers and
// inserts it into the cache. It must be called exactly once, by the leader.
func (fl *Flight) Commit(features, prediction []float32) error {
	if !fl.leader {
		return fmt.Errorf("cache: Commit on a follower flight")
	}
	err := fl.c.Insert(features, prediction)
	fl.f.pred = prediction
	fl.settle()
	return err
}

// Cancel settles a failed leadership: followers receive err from Wait.
func (fl *Flight) Cancel(err error) {
	if !fl.leader {
		return
	}
	fl.f.err = err
	fl.settle()
}

func (fl *Flight) settle() {
	fl.c.fmu.Lock()
	delete(fl.c.flights, fl.key)
	fl.c.fmu.Unlock()
	close(fl.f.done)
}

// Wait blocks until the leader settles and returns its prediction (which
// must not be mutated) or its cancellation error.
func (fl *Flight) Wait() ([]float32, error) {
	<-fl.f.done
	return fl.settled()
}

// WaitCancel is Wait observing a query-cancellation token: a follower whose
// query is cancelled while the leader is still computing stops waiting and
// returns the cancellation cause. The flight itself is untouched — the
// leader still settles it for any other followers. A nil token behaves
// exactly like Wait.
func (fl *Flight) WaitCancel(tok *lifecycle.Token) ([]float32, error) {
	select {
	case <-fl.f.done:
		return fl.settled()
	case <-tok.Done():
		return nil, tok.Cause()
	}
}

func (fl *Flight) settled() ([]float32, error) {
	if fl.f.err != nil {
		return nil, fl.f.err
	}
	fl.c.shared.Add(1)
	return fl.f.pred, nil
}

// CachedModel serves a model through a result cache: lookups that hit reuse
// the cached prediction; misses run the model and insert the fresh result.
type CachedModel struct {
	Model *nn.Model
	Cache *ResultCache
	// InsertOnMiss controls whether misses populate the cache (on by
	// default through NewCachedModel).
	InsertOnMiss bool
}

// NewCachedModel wraps model with cache.
func NewCachedModel(model *nn.Model, cache *ResultCache) *CachedModel {
	return &CachedModel{Model: model, Cache: cache, InsertOnMiss: true}
}

// PredictRow serves one feature row, preferring the cache. The flat row is
// reshaped to the model's input shape (e.g. a flattened image back to
// NHWC) before a miss runs the model.
func (cm *CachedModel) PredictRow(features []float32) ([]float32, error) {
	if pred, ok, err := cm.Cache.Lookup(features); err != nil {
		return nil, err
	} else if ok {
		return pred, nil
	}
	shape := append([]int(nil), cm.Model.InShape...)
	shape[0] = 1
	vol := 1
	for _, d := range shape[1:] {
		vol *= d
	}
	if vol != len(features) {
		return nil, fmt.Errorf("cache: row width %d does not match model input %v", len(features), cm.Model.InShape[1:])
	}
	x := tensor.FromSlice(append([]float32(nil), features...), shape...)
	out := cm.Model.Forward(x)
	pred := append([]float32(nil), out.Data()...)
	if cm.InsertOnMiss {
		if err := cm.Cache.Insert(features, pred); err != nil {
			return nil, err
		}
	}
	return pred, nil
}

// PredictClass serves one row and returns the argmax class.
func (cm *CachedModel) PredictClass(features []float32) (int, error) {
	pred, err := cm.PredictRow(features)
	if err != nil {
		return 0, err
	}
	best := 0
	for j := 1; j < len(pred); j++ {
		if pred[j] > pred[best] {
			best = j
		}
	}
	return best, nil
}

// EstimateAgreement is the Monte-Carlo error-bound estimator of Sec. 5: it
// draws the rows of sample, serves each both through the cache path and the
// full model, and returns the fraction whose argmax classes agree. The
// estimate is what the adaptive policy compares against the SLA. Cache
// state (hit counters, inserted entries) is modified by the probe.
func EstimateAgreement(cm *CachedModel, sample *tensor.Tensor) (float64, error) {
	if sample.Rank() != 2 {
		return 0, fmt.Errorf("cache: sample must be 2-D, got %v", sample.Shape())
	}
	n := sample.Dim(0)
	if n == 0 {
		return 0, fmt.Errorf("cache: empty sample")
	}
	shape := append([]int(nil), cm.Model.InShape...)
	shape[0] = n
	batch := sample.Clone().Reshape(shape...)
	out := cm.Model.Forward(batch)
	out = out.Reshape(n, out.Len()/n)
	full := make([]int, n)
	for i := range full {
		full[i] = out.ArgMaxRow(i)
	}
	agree := 0
	for i := 0; i < n; i++ {
		got, err := cm.PredictClass(sample.Row(i))
		if err != nil {
			return 0, err
		}
		if got == full[i] {
			agree++
		}
	}
	return float64(agree) / float64(n), nil
}

// SLA captures an application's tolerance for approximate caching.
type SLA struct {
	// MinAgreement is the lowest acceptable cached-vs-full agreement
	// fraction (e.g. 0.95 allows a 5-point accuracy drop).
	MinAgreement float64
}

// Recommend implements the adaptive caching policy: it estimates agreement
// on the sample via Monte Carlo and recommends the cache only if the
// estimate meets the SLA.
func Recommend(cm *CachedModel, sample *tensor.Tensor, sla SLA) (useCache bool, agreement float64, err error) {
	agreement, err = EstimateAgreement(cm, sample)
	if err != nil {
		return false, 0, err
	}
	return agreement >= sla.MinAgreement, agreement, nil
}
