// Package cache implements the RDBMS-integrated inference-result cache of
// Sec. 5, validated in Sec. 7.2.2: feature vectors of previously answered
// inference requests are indexed in an approximate-nearest-neighbour
// structure (HNSW by default), and a new request whose features fall within
// a distance threshold of a cached entry reuses that entry's prediction
// instead of running the model. The package also provides the Monte-Carlo
// agreement estimator and the SLA-aware adaptive policy the paper proposes
// for deciding whether caching is acceptable for an application.
package cache

import (
	"fmt"
	"sync"

	"tensorbase/internal/ann"
	"tensorbase/internal/nn"
	"tensorbase/internal/tensor"
)

// ResultCache maps feature vectors to cached prediction vectors through an
// ANN index. It is safe for concurrent use.
type ResultCache struct {
	mu      sync.Mutex
	index   ann.Index
	dim     int
	maxDist float64 // squared L2 admission threshold
	preds   map[int64][]float32
	nextID  int64
	hits    int64
	misses  int64
}

// New returns a cache over index for dim-wide features. A lookup hits when
// the nearest cached entry is within maxSquaredDist.
func New(index ann.Index, dim int, maxSquaredDist float64) (*ResultCache, error) {
	if index == nil {
		return nil, fmt.Errorf("cache: nil index")
	}
	if dim < 1 {
		return nil, fmt.Errorf("cache: dimension %d < 1", dim)
	}
	if maxSquaredDist < 0 {
		return nil, fmt.Errorf("cache: negative distance threshold %g", maxSquaredDist)
	}
	return &ResultCache{index: index, dim: dim, maxDist: maxSquaredDist, preds: make(map[int64][]float32)}, nil
}

// NewHNSW returns a cache backed by a default-tuned HNSW index.
func NewHNSW(dim int, maxSquaredDist float64) (*ResultCache, error) {
	return New(ann.NewHNSW(dim, ann.HNSWConfig{Seed: 1}), dim, maxSquaredDist)
}

// Len returns the number of cached entries.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.index.Len()
}

// Lookup returns the cached prediction for the nearest entry within the
// distance threshold, or ok=false. The returned slice must not be mutated.
func (c *ResultCache) Lookup(features []float32) (pred []float32, ok bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(features) != c.dim {
		return nil, false, fmt.Errorf("cache: feature width %d, want %d", len(features), c.dim)
	}
	res, err := c.index.Search(features, 1)
	if err != nil {
		return nil, false, err
	}
	if len(res) == 0 || res[0].Dist > c.maxDist {
		c.misses++
		return nil, false, nil
	}
	p, found := c.preds[res[0].ID]
	if !found {
		c.misses++
		return nil, false, nil
	}
	c.hits++
	return p, true, nil
}

// Insert caches prediction under the given features.
func (c *ResultCache) Insert(features, prediction []float32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(features) != c.dim {
		return fmt.Errorf("cache: feature width %d, want %d", len(features), c.dim)
	}
	id := c.nextID
	c.nextID++
	if err := c.index.Add(id, features); err != nil {
		return err
	}
	c.preds[id] = append([]float32(nil), prediction...)
	return nil
}

// Stats returns cumulative hit and miss counts.
func (c *ResultCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// CachedModel serves a model through a result cache: lookups that hit reuse
// the cached prediction; misses run the model and insert the fresh result.
type CachedModel struct {
	Model *nn.Model
	Cache *ResultCache
	// InsertOnMiss controls whether misses populate the cache (on by
	// default through NewCachedModel).
	InsertOnMiss bool
}

// NewCachedModel wraps model with cache.
func NewCachedModel(model *nn.Model, cache *ResultCache) *CachedModel {
	return &CachedModel{Model: model, Cache: cache, InsertOnMiss: true}
}

// PredictRow serves one feature row, preferring the cache. The flat row is
// reshaped to the model's input shape (e.g. a flattened image back to
// NHWC) before a miss runs the model.
func (cm *CachedModel) PredictRow(features []float32) ([]float32, error) {
	if pred, ok, err := cm.Cache.Lookup(features); err != nil {
		return nil, err
	} else if ok {
		return pred, nil
	}
	shape := append([]int(nil), cm.Model.InShape...)
	shape[0] = 1
	vol := 1
	for _, d := range shape[1:] {
		vol *= d
	}
	if vol != len(features) {
		return nil, fmt.Errorf("cache: row width %d does not match model input %v", len(features), cm.Model.InShape[1:])
	}
	x := tensor.FromSlice(append([]float32(nil), features...), shape...)
	out := cm.Model.Forward(x)
	pred := append([]float32(nil), out.Data()...)
	if cm.InsertOnMiss {
		if err := cm.Cache.Insert(features, pred); err != nil {
			return nil, err
		}
	}
	return pred, nil
}

// PredictClass serves one row and returns the argmax class.
func (cm *CachedModel) PredictClass(features []float32) (int, error) {
	pred, err := cm.PredictRow(features)
	if err != nil {
		return 0, err
	}
	best := 0
	for j := 1; j < len(pred); j++ {
		if pred[j] > pred[best] {
			best = j
		}
	}
	return best, nil
}

// EstimateAgreement is the Monte-Carlo error-bound estimator of Sec. 5: it
// draws the rows of sample, serves each both through the cache path and the
// full model, and returns the fraction whose argmax classes agree. The
// estimate is what the adaptive policy compares against the SLA. Cache
// state (hit counters, inserted entries) is modified by the probe.
func EstimateAgreement(cm *CachedModel, sample *tensor.Tensor) (float64, error) {
	if sample.Rank() != 2 {
		return 0, fmt.Errorf("cache: sample must be 2-D, got %v", sample.Shape())
	}
	n := sample.Dim(0)
	if n == 0 {
		return 0, fmt.Errorf("cache: empty sample")
	}
	shape := append([]int(nil), cm.Model.InShape...)
	shape[0] = n
	batch := sample.Clone().Reshape(shape...)
	out := cm.Model.Forward(batch)
	out = out.Reshape(n, out.Len()/n)
	full := make([]int, n)
	for i := range full {
		full[i] = out.ArgMaxRow(i)
	}
	agree := 0
	for i := 0; i < n; i++ {
		got, err := cm.PredictClass(sample.Row(i))
		if err != nil {
			return 0, err
		}
		if got == full[i] {
			agree++
		}
	}
	return float64(agree) / float64(n), nil
}

// SLA captures an application's tolerance for approximate caching.
type SLA struct {
	// MinAgreement is the lowest acceptable cached-vs-full agreement
	// fraction (e.g. 0.95 allows a 5-point accuracy drop).
	MinAgreement float64
}

// Recommend implements the adaptive caching policy: it estimates agreement
// on the sample via Monte Carlo and recommends the cache only if the
// estimate meets the SLA.
func Recommend(cm *CachedModel, sample *tensor.Tensor, sla SLA) (useCache bool, agreement float64, err error) {
	agreement, err = EstimateAgreement(cm, sample)
	if err != nil {
		return false, 0, err
	}
	return agreement >= sla.MinAgreement, agreement, nil
}
