package cache

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func newTestCache(t *testing.T, dim int, thresh float64) *ResultCache {
	t.Helper()
	rc, err := NewHNSW(dim, thresh)
	if err != nil {
		t.Fatal(err)
	}
	return rc
}

func TestProbeFlightLeaderCommitFollowerWait(t *testing.T) {
	rc := newTestCache(t, 4, 1e-9)
	feat := []float32{1, 2, 3, 4}

	_, ok, fl, err := rc.ProbeFlight(feat)
	if err != nil || ok {
		t.Fatalf("cold probe: ok=%v err=%v", ok, err)
	}
	if !fl.Leader() {
		t.Fatal("first prober must lead")
	}

	// A concurrent prober of the same features becomes a follower.
	done := make(chan []float32, 1)
	probed := make(chan struct{})
	go func() {
		_, ok, fl2, err := rc.ProbeFlight(feat)
		close(probed)
		if err != nil || ok || fl2.Leader() {
			done <- nil
			return
		}
		p, err := fl2.Wait()
		if err != nil {
			done <- nil
			return
		}
		done <- p
	}()
	<-probed // commit only after the follower joined the flight

	pred := []float32{42}
	if err := fl.Commit(feat, pred); err != nil {
		t.Fatal(err)
	}
	if got := <-done; len(got) != 1 || got[0] != 42 {
		t.Fatalf("follower got %v, want [42]", got)
	}

	// The committed entry now hits directly.
	p, ok, fl3, err := rc.ProbeFlight(feat)
	if err != nil || !ok || fl3 != nil {
		t.Fatalf("post-commit probe: ok=%v fl=%v err=%v", ok, fl3, err)
	}
	if p[0] != 42 {
		t.Fatalf("post-commit pred %v", p)
	}
	if c := rc.Counters(); c.Shared != 1 || c.Entries != 1 {
		t.Fatalf("counters %+v", c)
	}
}

func TestProbeFlightCancelPropagatesError(t *testing.T) {
	rc := newTestCache(t, 2, 1e-9)
	feat := []float32{9, 9}
	_, _, fl, err := rc.ProbeFlight(feat)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("model OOM")
	ready := make(chan error, 1)
	probed := make(chan struct{})
	go func() {
		_, _, fl2, err := rc.ProbeFlight(feat)
		close(probed)
		if err != nil {
			ready <- err
			return
		}
		if fl2.Leader() {
			ready <- errors.New("second prober should follow, not lead")
			return
		}
		_, err = fl2.Wait()
		ready <- err
	}()
	<-probed // cancel only after the follower joined the flight
	fl.Cancel(boom)
	if err := <-ready; !errors.Is(err, boom) {
		t.Fatalf("follower err = %v, want %v", err, boom)
	}
	// A cancelled key is re-probable: the next prober leads again.
	_, ok, fl3, err := rc.ProbeFlight(feat)
	if err != nil || ok || !fl3.Leader() {
		t.Fatalf("re-probe after cancel: ok=%v leader=%v err=%v", ok, fl3 != nil && fl3.Leader(), err)
	}
	fl3.Cancel(errors.New("cleanup"))
}

func TestMaxEntriesStopsAdmission(t *testing.T) {
	rc := newTestCache(t, 2, 1e-9)
	rc.SetMaxEntries(2)
	for i := 0; i < 5; i++ {
		if err := rc.Insert([]float32{float32(i), 0}, []float32{1}); err != nil {
			t.Fatal(err)
		}
	}
	if rc.Len() != 2 {
		t.Fatalf("len = %d, want capped at 2", rc.Len())
	}
	if c := rc.Counters(); c.Rejected != 3 {
		t.Fatalf("rejected = %d, want 3", c.Rejected)
	}
	// Capped entries still serve.
	if _, ok, err := rc.Lookup([]float32{0, 0}); err != nil || !ok {
		t.Fatalf("capped cache lost an admitted entry: ok=%v err=%v", ok, err)
	}
}

// TestConcurrentLookupInsertHammer drives concurrent lookups, inserts, and
// single-flight probes through the RWMutex-split cache. Under -race (the
// ROADMAP race tier) this asserts that HNSW Search never observes a
// half-linked node and that flight accounting is sound.
func TestConcurrentLookupInsertHammer(t *testing.T) {
	const dim, workers, iters = 8, 8, 300
	rc := newTestCache(t, dim, 1e-9)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < iters; i++ {
				vec := make([]float32, dim)
				for j := range vec {
					vec[j] = float32(rng.Intn(40)) // overlapping keyspace
				}
				switch i % 3 {
				case 0:
					if _, _, err := rc.Lookup(vec); err != nil {
						errs <- err
						return
					}
				case 1:
					if err := rc.Insert(vec, vec[:1]); err != nil {
						errs <- err
						return
					}
				default:
					pred, ok, fl, err := rc.ProbeFlight(vec)
					if err != nil {
						errs <- err
						return
					}
					switch {
					case ok:
						if len(pred) == 0 {
							errs <- fmt.Errorf("hit with empty prediction")
							return
						}
					case fl.Leader():
						if err := fl.Commit(vec, vec[:1]); err != nil {
							errs <- err
							return
						}
					default:
						if _, err := fl.Wait(); err != nil {
							errs <- err
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Consistency: every cached id has a prediction, and a search over the
	// final index returns well-formed neighbours.
	if rc.Len() == 0 {
		t.Fatal("hammer inserted nothing")
	}
	probe := make([]float32, dim)
	if _, _, err := rc.Lookup(probe); err != nil {
		t.Fatal(err)
	}
	c := rc.Counters()
	if c.Hits < 0 || c.Misses < 0 || c.Hits+c.Misses == 0 {
		t.Fatalf("counters %+v", c)
	}
}

// TestConcurrentLookupsDoNotSerialise is a smoke check that many readers
// can hold the read lock together: all lookups run against a frozen index
// from parallel goroutines (meaningful under -race).
func TestConcurrentLookupsParallel(t *testing.T) {
	const dim = 16
	rc := newTestCache(t, dim, 0.5)
	rng := rand.New(rand.NewSource(7))
	vecs := make([][]float32, 200)
	for i := range vecs {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		vecs[i] = v
		if err := rc.Insert(v, []float32{float32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := vecs[(i+w)%len(vecs)]
				p, ok, err := rc.Lookup(v)
				if err != nil || !ok || len(p) != 1 {
					t.Errorf("lookup: ok=%v err=%v", ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
