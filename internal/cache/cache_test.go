package cache

import (
	"math/rand"
	"testing"

	"tensorbase/internal/ann"
	"tensorbase/internal/data"
	"tensorbase/internal/nn"
	"tensorbase/internal/tensor"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 4, 1); err == nil {
		t.Fatal("nil index must error")
	}
	if _, err := New(ann.NewBrute(4), 0, 1); err == nil {
		t.Fatal("dim 0 must error")
	}
	if _, err := New(ann.NewBrute(4), 4, -1); err == nil {
		t.Fatal("negative threshold must error")
	}
}

func TestLookupMissOnEmptyAndFarEntries(t *testing.T) {
	c, err := New(ann.NewBrute(2), 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Lookup([]float32{1, 1}); err != nil || ok {
		t.Fatalf("empty cache lookup: ok=%v err=%v", ok, err)
	}
	if err := c.Insert([]float32{10, 10}, []float32{0.9, 0.1}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Lookup([]float32{1, 1}); ok {
		t.Fatal("far entry must miss")
	}
	hits, misses := c.Stats()
	if hits != 0 || misses != 2 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestLookupHitWithinThreshold(t *testing.T) {
	c, err := New(ann.NewBrute(2), 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0.2, 0.8}
	if err := c.Insert([]float32{1, 1}, want); err != nil {
		t.Fatal(err)
	}
	pred, ok, err := c.Lookup([]float32{1.1, 1}) // dist² = 0.01 < 0.05
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if pred[0] != want[0] || pred[1] != want[1] {
		t.Fatalf("pred = %v", pred)
	}
	hits, _ := c.Stats()
	if hits != 1 {
		t.Fatalf("hits = %d", hits)
	}
}

func TestDimensionMismatch(t *testing.T) {
	c, _ := New(ann.NewBrute(3), 3, 1)
	if err := c.Insert([]float32{1}, []float32{1}); err == nil {
		t.Fatal("short insert must error")
	}
	if _, _, err := c.Lookup([]float32{1}); err == nil {
		t.Fatal("short lookup must error")
	}
}

func trainedModel(t *testing.T, seed int64) (*nn.Model, *data.Classified, *data.Classified) {
	t.Helper()
	train := data.Clusters(seed, 600, 16, 4, 0.4)
	test := data.Clusters(seed+1000, 200, 16, 4, 0.4)
	// Clusters with different seeds have different centres; use the same
	// seed stream for train/test instead.
	all := data.Clusters(seed, 800, 16, 4, 0.4)
	train = &data.Classified{X: all.X.Slice2D(0, 600, 0, 16), Labels: all.Labels[:600]}
	test = &data.Classified{X: all.X.Slice2D(600, 800, 0, 16), Labels: all.Labels[600:]}
	rng := rand.New(rand.NewSource(seed))
	m := nn.MustModel("cachetest", []int{1, 16},
		nn.NewLinear(rng, 16, 32), nn.ReLU{},
		nn.NewLinear(rng, 32, 4), nn.Softmax{},
	)
	if _, err := nn.Train(m, train.X, train.Labels, nn.TrainConfig{Epochs: 8, BatchSize: 32, LR: 0.1, Seed: seed}); err != nil {
		t.Fatal(err)
	}
	return m, train, test
}

func TestCachedModelMissThenHit(t *testing.T) {
	m, train, _ := trainedModel(t, 5)
	c, err := NewHNSW(16, 1e-9) // effectively exact-match caching
	if err != nil {
		t.Fatal(err)
	}
	cm := NewCachedModel(m, c)
	row := train.X.Row(0)
	p1, err := cm.PredictRow(row)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := cm.PredictRow(row) // identical features: must hit
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 1/1", hits, misses)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("hit returned different prediction")
		}
	}
}

func TestCachedModelSpeedsUpAndDropsAccuracy(t *testing.T) {
	// The Sec. 7.2.2 trade-off in miniature: with an approximate
	// threshold, cached serving agrees with full inference on most but
	// not all queries.
	m, train, test := trainedModel(t, 7)
	c, err := NewHNSW(16, 4.0) // generous threshold → approximate reuse
	if err != nil {
		t.Fatal(err)
	}
	cm := NewCachedModel(m, c)
	// Warm the cache with the training rows' predictions.
	for i := 0; i < train.X.Dim(0); i++ {
		if _, err := cm.PredictRow(train.X.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	fullAcc, err := nn.Accuracy(m, test.X.Clone(), test.Labels)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < test.X.Dim(0); i++ {
		cls, err := cm.PredictClass(test.X.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if cls == test.Labels[i] {
			correct++
		}
	}
	cachedAcc := float64(correct) / float64(test.X.Dim(0))
	hits, _ := c.Stats()
	if hits == 0 {
		t.Fatal("warm cache produced no hits on in-distribution queries")
	}
	if fullAcc < 0.9 {
		t.Fatalf("full accuracy only %.3f; training failed", fullAcc)
	}
	if cachedAcc < fullAcc-0.25 {
		t.Fatalf("cached accuracy %.3f collapsed vs full %.3f", cachedAcc, fullAcc)
	}
}

func TestEstimateAgreementBounds(t *testing.T) {
	m, train, test := trainedModel(t, 9)
	c, err := NewHNSW(16, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	cm := NewCachedModel(m, c)
	for i := 0; i < train.X.Dim(0); i++ {
		if _, err := cm.PredictRow(train.X.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	agree, err := EstimateAgreement(cm, test.X)
	if err != nil {
		t.Fatal(err)
	}
	if agree < 0 || agree > 1 {
		t.Fatalf("agreement %v out of [0,1]", agree)
	}
	if agree < 0.5 {
		t.Fatalf("agreement %v implausibly low for clustered data", agree)
	}
}

func TestEstimateAgreementValidation(t *testing.T) {
	m, _, _ := trainedModel(t, 11)
	c, _ := NewHNSW(16, 1)
	cm := NewCachedModel(m, c)
	if _, err := EstimateAgreement(cm, tensor.New(0, 16)); err == nil {
		t.Fatal("empty sample must error")
	}
	if _, err := EstimateAgreement(cm, tensor.New(2, 2, 2)); err == nil {
		t.Fatal("non-2D sample must error")
	}
}

func TestRecommendHonoursSLA(t *testing.T) {
	m, train, test := trainedModel(t, 13)
	c, err := NewHNSW(16, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	cm := NewCachedModel(m, c)
	for i := 0; i < train.X.Dim(0); i++ {
		if _, err := cm.PredictRow(train.X.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	use, agree, err := Recommend(cm, test.X, SLA{MinAgreement: 0.0})
	if err != nil {
		t.Fatal(err)
	}
	if !use {
		t.Fatal("zero SLA must always recommend the cache")
	}
	use, _, err = Recommend(cm, test.X, SLA{MinAgreement: agree + 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if use {
		t.Fatal("SLA above measured agreement must reject the cache")
	}
}
