package cache

import (
	"context"
	"errors"
	"testing"
	"time"

	"tensorbase/internal/lifecycle"
	"tensorbase/internal/testutil"
)

// TestFlightWaitCancelUnblocksFollower: a follower whose query is cancelled
// while the leader is still computing stops waiting immediately; the flight
// itself survives and serves followers that keep waiting.
func TestFlightWaitCancelUnblocksFollower(t *testing.T) {
	testutil.NoLeakedGoroutines(t)
	rc, err := NewHNSW(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	feat := []float32{1, 2}
	_, ok, leader, err := rc.ProbeFlight(feat)
	if err != nil || ok || !leader.Leader() {
		t.Fatalf("expected leadership, got ok=%v err=%v", ok, err)
	}
	_, _, follower, err := rc.ProbeFlight(feat)
	if err != nil || follower.Leader() {
		t.Fatalf("expected follower, err=%v", err)
	}
	_, _, patient, err := rc.ProbeFlight(feat)
	if err != nil || patient.Leader() {
		t.Fatalf("expected second follower, err=%v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	tok, stop := lifecycle.Watch(ctx)
	defer stop()
	cancelled := make(chan error, 1)
	go func() {
		_, werr := follower.WaitCancel(tok)
		cancelled <- werr
	}()
	cancel()
	select {
	case werr := <-cancelled:
		if !errors.Is(werr, context.Canceled) {
			t.Fatalf("WaitCancel = %v, want context.Canceled", werr)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled follower still waiting")
	}

	// The leader settles normally and the patient follower gets the result.
	if err := leader.Commit(feat, []float32{9}); err != nil {
		t.Fatal(err)
	}
	p, werr := patient.WaitCancel(nil) // nil token: plain Wait semantics
	if werr != nil || len(p) != 1 || p[0] != 9 {
		t.Fatalf("patient Wait = %v, %v", p, werr)
	}
}

// TestFlightWaitCancelSettledBeforeCancel: a settled flight returns its
// result even if the token is already cancelled — settle wins the race.
func TestFlightWaitCancelSettledWins(t *testing.T) {
	rc, err := NewHNSW(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	feat := []float32{3, 4}
	_, _, leader, err := rc.ProbeFlight(feat)
	if err != nil {
		t.Fatal(err)
	}
	_, _, follower, err := rc.ProbeFlight(feat)
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.Commit(feat, []float32{7}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tok, stop := lifecycle.Watch(ctx)
	defer stop()
	// done is closed and tok is cancelled: select may pick either arm, but
	// a settled result must never be reported as an error more than
	// transiently — accept either the value or the cancellation.
	p, werr := follower.WaitCancel(tok)
	if werr == nil && (len(p) != 1 || p[0] != 7) {
		t.Fatalf("WaitCancel = %v", p)
	}
	if werr != nil && !errors.Is(werr, context.Canceled) {
		t.Fatalf("WaitCancel err = %v", werr)
	}
}
