package cache

import (
	"encoding/binary"
	"hash/maphash"
	"math"
	"sync"
)

// ExactCache is the zero-error alternative of Sec. 5: instead of
// approximate nearest-neighbour reuse, predictions are keyed by a hash of
// the exact feature bytes, so only byte-identical requests hit. It suits
// accuracy-critical applications where the SLA rejects approximate caching
// but frequent requests repeat exactly (the paper's "exact inference result
// caching leveraging the hashing indexing").
type ExactCache struct {
	mu     sync.Mutex
	seed   maphash.Seed
	preds  map[uint64][]entry
	hits   int64
	misses int64
}

// entry disambiguates hash collisions by keeping the full key.
type entry struct {
	features []float32
	pred     []float32
}

// NewExact returns an empty exact-match cache.
func NewExact() *ExactCache {
	return &ExactCache{seed: maphash.MakeSeed(), preds: make(map[uint64][]entry)}
}

func (c *ExactCache) hash(features []float32) uint64 {
	var h maphash.Hash
	h.SetSeed(c.seed)
	var buf [8]byte
	for _, v := range features {
		binary.LittleEndian.PutUint32(buf[:4], math.Float32bits(v))
		h.Write(buf[:4])
	}
	return h.Sum64()
}

func equalFeatures(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// Lookup returns the cached prediction for byte-identical features.
func (c *ExactCache) Lookup(features []float32) (pred []float32, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.preds[c.hash(features)] {
		if equalFeatures(e.features, features) {
			c.hits++
			return e.pred, true
		}
	}
	c.misses++
	return nil, false
}

// Insert caches prediction under the exact features. Re-inserting the same
// features overwrites the previous prediction.
func (c *ExactCache) Insert(features, prediction []float32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.hash(features)
	bucket := c.preds[h]
	for i, e := range bucket {
		if equalFeatures(e.features, features) {
			bucket[i].pred = append([]float32(nil), prediction...)
			return
		}
	}
	c.preds[h] = append(bucket, entry{
		features: append([]float32(nil), features...),
		pred:     append([]float32(nil), prediction...),
	})
}

// Len returns the number of cached entries.
func (c *ExactCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, b := range c.preds {
		n += len(b)
	}
	return n
}

// Stats returns cumulative hit and miss counts.
func (c *ExactCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
