package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExactCacheHitRequiresIdenticalFeatures(t *testing.T) {
	c := NewExact()
	c.Insert([]float32{1, 2, 3}, []float32{0.9})
	if pred, ok := c.Lookup([]float32{1, 2, 3}); !ok || pred[0] != 0.9 {
		t.Fatalf("identical lookup: ok=%v pred=%v", ok, pred)
	}
	if _, ok := c.Lookup([]float32{1, 2, 3.001}); ok {
		t.Fatal("near-identical features must miss (exact semantics)")
	}
	if _, ok := c.Lookup([]float32{1, 2}); ok {
		t.Fatal("shorter features must miss")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestExactCacheOverwrite(t *testing.T) {
	c := NewExact()
	c.Insert([]float32{5}, []float32{0.1})
	c.Insert([]float32{5}, []float32{0.2})
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after overwrite", c.Len())
	}
	pred, ok := c.Lookup([]float32{5})
	if !ok || pred[0] != 0.2 {
		t.Fatalf("pred = %v", pred)
	}
}

func TestExactCacheReturnedSliceIsStable(t *testing.T) {
	c := NewExact()
	feat := []float32{1, 2}
	pred := []float32{0.5}
	c.Insert(feat, pred)
	feat[0] = 9 // caller mutates its slices afterwards
	pred[0] = 9
	got, ok := c.Lookup([]float32{1, 2})
	if !ok || got[0] != 0.5 {
		t.Fatalf("cache aliased caller slices: ok=%v got=%v", ok, got)
	}
}

// Property: everything inserted is found exactly; nothing not inserted is
// found.
func TestExactCacheProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewExact()
		n := 1 + rng.Intn(100)
		feats := make([][]float32, n)
		for i := range feats {
			v := make([]float32, 4)
			for j := range v {
				v[j] = float32(rng.Intn(50)) // duplicates likely
			}
			feats[i] = v
			c.Insert(v, []float32{float32(i)})
		}
		// Every inserted key must hit (possibly with a later overwrite's
		// value — find the last insert of an equal key).
		for i, f := range feats {
			pred, ok := c.Lookup(f)
			if !ok {
				return false
			}
			lastIdx := i
			for j := i + 1; j < n; j++ {
				if equalFeatures(feats[j], f) {
					lastIdx = j
				}
			}
			if pred[0] != float32(lastIdx) {
				return false
			}
		}
		// A key guaranteed absent must miss.
		if _, ok := c.Lookup([]float32{-1, -1, -1, -1}); ok {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
