package table

import (
	"strings"
	"testing"
)

// colTestHeap builds a heap of n rows: (id, name, features[w]) with
// deterministic contents, padded so the chain spans several pages.
func colTestHeap(t *testing.T, n, w int) (*Heap, *Schema) {
	t.Helper()
	s := MustSchema(
		Column{"id", Int64},
		Column{"name", Text},
		Column{"features", FloatVec},
	)
	h, err := NewHeap(newPool(t, 8), s)
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("p", 64)
	for i := 0; i < n; i++ {
		vec := make([]float32, w)
		for j := range vec {
			vec[j] = float32(i*w + j)
		}
		if _, err := h.Insert(Tuple{IntVal(int64(i)), TextVal(pad), VecVal(vec)}); err != nil {
			t.Fatal(err)
		}
	}
	return h, s
}

func TestColBatchMatchesRowScan(t *testing.T) {
	const n, w, batch = 137, 6, 16 // n % batch != 0 exercises the short tail
	h, s := colTestHeap(t, n, w)
	featIdx := s.ColIndex("features")

	row := h.Scan()
	col := h.Scan()
	seen := 0
	for {
		cb, err := NewColBatch(s, featIdx, batch)
		if err != nil {
			t.Fatal(err)
		}
		got, err := col.NextColumnar(cb)
		if err != nil {
			t.Fatal(err)
		}
		if got != cb.Rows() || len(cb.Feats) != got*cb.Width {
			t.Fatalf("returned %d rows, batch holds %d, feats len %d", got, cb.Rows(), len(cb.Feats))
		}
		for i := 0; i < got; i++ {
			want, ok, err := row.Next()
			if err != nil || !ok {
				t.Fatalf("row scan ended early at %d: %v", seen+i, err)
			}
			for j := range want {
				if !cb.Tuples[i][j].Equal(want[j]) {
					t.Fatalf("row %d col %d: %v vs %v", seen+i, j, cb.Tuples[i][j], want[j])
				}
			}
			// The tuple's feature value must alias the contiguous buffer,
			// not copy it.
			if &cb.Tuples[i][featIdx].Vec[0] != &cb.Feats[i*w] {
				t.Fatalf("row %d feature vector does not alias Feats", seen+i)
			}
		}
		seen += got
		if got < batch {
			break
		}
	}
	if seen != n {
		t.Fatalf("columnar scan yielded %d rows, want %d", seen, n)
	}
	if _, ok, _ := row.Next(); ok {
		t.Fatal("row scan has leftover tuples")
	}
}

// TestColBatchResumesMidPage fills tiny batches so page boundaries and batch
// boundaries interleave every way.
func TestColBatchResumesMidPage(t *testing.T) {
	const n, w = 101, 3
	h, s := colTestHeap(t, n, w)
	featIdx := s.ColIndex("features")
	sc := h.Scan()
	var next int64
	for {
		cb, err := NewColBatch(s, featIdx, 2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sc.NextColumnar(cb)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < got; i++ {
			if cb.Tuples[i][0].Int != next {
				t.Fatalf("expected id %d, got %d", next, cb.Tuples[i][0].Int)
			}
			next++
		}
		if got < 2 {
			break
		}
	}
	if next != n {
		t.Fatalf("resumed scan covered %d rows, want %d", next, n)
	}
}

func TestColBatchRaggedWidthRejected(t *testing.T) {
	s := MustSchema(Column{"features", FloatVec})
	h, err := NewHeap(newPool(t, 4), s)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, 4, 5} {
		if _, err := h.Insert(Tuple{VecVal(make([]float32, w))}); err != nil {
			t.Fatal(err)
		}
	}
	cb, err := NewColBatch(s, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Scan().NextColumnar(cb); err == nil {
		t.Fatal("ragged feature widths must fail the columnar decode")
	}
}

func TestNewColBatchValidates(t *testing.T) {
	s := MustSchema(Column{"id", Int64}, Column{"v", FloatVec})
	if _, err := NewColBatch(s, 0, 4); err == nil {
		t.Fatal("Int64 feature column must be rejected")
	}
	if _, err := NewColBatch(s, 2, 4); err == nil {
		t.Fatal("out-of-range feature column must be rejected")
	}
	if _, err := NewColBatch(s, 1, 0); err == nil {
		t.Fatal("zero-capacity batch must be rejected")
	}
}

// TestColBatchSecondVecColumn: only the designated feature column lands in
// Feats; other vector columns still decode into their own storage.
func TestColBatchSecondVecColumn(t *testing.T) {
	s := MustSchema(Column{"a", FloatVec}, Column{"b", FloatVec})
	h, err := NewHeap(newPool(t, 4), s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Insert(Tuple{VecVal([]float32{1, 2}), VecVal([]float32{3, 4, 5})}); err != nil {
		t.Fatal(err)
	}
	cb, err := NewColBatch(s, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Scan().NextColumnar(cb)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 || cb.Width != 3 {
		t.Fatalf("got %d rows width %d", got, cb.Width)
	}
	if !cb.Tuples[0][0].Equal(VecVal([]float32{1, 2})) {
		t.Fatalf("non-feature vec column decoded as %v", cb.Tuples[0][0])
	}
	if !cb.Tuples[0][1].Equal(VecVal([]float32{3, 4, 5})) {
		t.Fatalf("feature column decoded as %v", cb.Tuples[0][1])
	}
	if &cb.Tuples[0][1].Vec[0] != &cb.Feats[0] {
		t.Fatal("feature column must alias Feats")
	}
}
