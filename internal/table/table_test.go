package table

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"tensorbase/internal/storage"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{"id", Int64},
		Column{"score", Float64},
		Column{"name", Text},
		Column{"features", FloatVec},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Column{"a", Int64}, Column{"a", Text}); err == nil {
		t.Fatal("duplicate column must be rejected")
	}
	if _, err := NewSchema(Column{"", Int64}); err == nil {
		t.Fatal("empty name must be rejected")
	}
	if _, err := NewSchema(Column{"a", ColType(99)}); err == nil {
		t.Fatal("invalid type must be rejected")
	}
}

func TestColIndex(t *testing.T) {
	s := testSchema(t)
	if got := s.ColIndex("name"); got != 2 {
		t.Fatalf("ColIndex(name) = %d", got)
	}
	if got := s.ColIndex("missing"); got != -1 {
		t.Fatalf("ColIndex(missing) = %d", got)
	}
}

func TestProject(t *testing.T) {
	s := testSchema(t)
	p, err := s.Project("name", "id")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Cols[0].Name != "name" || p.Cols[1].Name != "id" {
		t.Fatalf("Project = %+v", p.Cols)
	}
	if _, err := s.Project("ghost"); err == nil {
		t.Fatal("unknown column must error")
	}
}

func TestConcatDisambiguates(t *testing.T) {
	a := MustSchema(Column{"id", Int64}, Column{"v", Float64})
	b := MustSchema(Column{"id", Int64}, Column{"w", Float64})
	c := a.Concat(b)
	if c.Len() != 4 {
		t.Fatalf("Concat len = %d", c.Len())
	}
	if c.Cols[2].Name == "id" {
		t.Fatalf("collision not disambiguated: %+v", c.Cols)
	}
	if c.ColIndex("id_2") < 0 {
		t.Fatalf("expected id_2 column, got %+v", c.Cols)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSchema(t)
	in := Tuple{IntVal(-42), FloatVal(3.14), TextVal("héllo"), VecVal([]float32{1.5, -2.5, 0})}
	rec, err := Encode(s, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(s, rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if !in[i].Equal(out[i]) {
			t.Fatalf("column %d: %v != %v", i, in[i], out[i])
		}
	}
}

func TestEncodeTypeMismatch(t *testing.T) {
	s := testSchema(t)
	bad := Tuple{TextVal("no"), FloatVal(1), TextVal("x"), VecVal(nil)}
	if _, err := Encode(s, bad); err == nil {
		t.Fatal("type mismatch must error")
	}
	if _, err := Encode(s, Tuple{IntVal(1)}); err == nil {
		t.Fatal("arity mismatch must error")
	}
}

func TestDecodeTruncated(t *testing.T) {
	s := testSchema(t)
	rec, err := Encode(s, Tuple{IntVal(1), FloatVal(2), TextVal("abc"), VecVal([]float32{1})})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 4, len(rec) - 1} {
		if _, err := Decode(s, rec[:cut]); err == nil {
			t.Fatalf("truncation at %d must error", cut)
		}
	}
	if _, err := Decode(s, append(rec, 0)); err == nil {
		t.Fatal("trailing bytes must error")
	}
}

// Property: Encode∘Decode is the identity over random tuples.
func TestTupleRoundTripProperty(t *testing.T) {
	s := MustSchema(Column{"i", Int64}, Column{"f", Float64}, Column{"t", Text}, Column{"v", FloatVec})
	f := func(i int64, fl float64, str string, vec []float32) bool {
		if len(str) > 1000 || len(vec) > 500 {
			return true // keep records page-sized
		}
		in := Tuple{IntVal(i), FloatVal(fl), TextVal(str), VecVal(vec)}
		rec, err := Encode(s, in)
		if err != nil {
			return false
		}
		out, err := Decode(s, rec)
		if err != nil {
			return false
		}
		// NaN float payloads: compare bit patterns via Equal semantics,
		// but NaN != NaN, so skip NaN floats.
		if fl != fl {
			return true
		}
		for j := range vec {
			if vec[j] != vec[j] {
				return true
			}
		}
		for j := range in {
			if !in[j].Equal(out[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func newPool(t *testing.T, frames int) *storage.BufferPool {
	t.Helper()
	d, err := storage.OpenDisk(filepath.Join(t.TempDir(), "t.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return storage.NewBufferPool(d, frames)
}

func TestHeapInsertGet(t *testing.T) {
	s := testSchema(t)
	h, err := NewHeap(newPool(t, 8), s)
	if err != nil {
		t.Fatal(err)
	}
	in := Tuple{IntVal(7), FloatVal(0.5), TextVal("row"), VecVal([]float32{9})}
	rid, err := h.Insert(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := h.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Equal(in[0]) || !out[2].Equal(in[2]) {
		t.Fatalf("Get = %v", out)
	}
	if h.Count() != 1 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestHeapScanOrderAndCompleteness(t *testing.T) {
	s := MustSchema(Column{"id", Int64})
	h, err := NewHeap(newPool(t, 8), s)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000 // forces multiple pages
	for i := 0; i < n; i++ {
		if _, err := h.Insert(Tuple{IntVal(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	sc := h.Scan()
	i := 0
	for {
		tup, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if tup[0].Int != int64(i) {
			t.Fatalf("row %d has id %d", i, tup[0].Int)
		}
		i++
	}
	if i != n {
		t.Fatalf("scanned %d rows, want %d", i, n)
	}
}

func TestHeapScanLargerThanBufferPool(t *testing.T) {
	// A heap much larger than the pool must still scan fully: pages spill
	// and re-load through eviction.
	s := MustSchema(Column{"pad", Text})
	pool := newPool(t, 2)
	h, err := NewHeap(pool, s)
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("x", 1000)
	const n = 200 // ~25 pages through a 2-frame pool
	for i := 0; i < n; i++ {
		if _, err := h.Insert(Tuple{TextVal(pad)}); err != nil {
			t.Fatal(err)
		}
	}
	sc := h.Scan()
	count := 0
	for {
		_, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != n {
		t.Fatalf("scanned %d, want %d", count, n)
	}
}

func TestHeapRejectsOversizeTuple(t *testing.T) {
	s := MustSchema(Column{"v", FloatVec})
	h, err := NewHeap(newPool(t, 4), s)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]float32, storage.PageSize) // 4x page size in bytes
	if _, err := h.Insert(Tuple{VecVal(big)}); err == nil {
		t.Fatal("oversize tuple must be rejected")
	}
}

func TestHeapRandomizedInsertScan(t *testing.T) {
	s := MustSchema(Column{"id", Int64}, Column{"v", FloatVec})
	h, err := NewHeap(newPool(t, 4), s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var want []Tuple
	for i := 0; i < 300; i++ {
		vec := make([]float32, rng.Intn(100))
		for j := range vec {
			vec[j] = rng.Float32()
		}
		tup := Tuple{IntVal(int64(i)), VecVal(vec)}
		if _, err := h.Insert(tup); err != nil {
			t.Fatal(err)
		}
		want = append(want, tup)
	}
	sc := h.Scan()
	for i := 0; ; i++ {
		got, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			if i != len(want) {
				t.Fatalf("scanned %d, want %d", i, len(want))
			}
			break
		}
		if !got[0].Equal(want[i][0]) || !got[1].Equal(want[i][1]) {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestHeapRIDsMatchScanOrder(t *testing.T) {
	s := MustSchema(Column{"id", Int64})
	h, err := NewHeap(newPool(t, 4), s)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000 // multiple pages
	for i := 0; i < n; i++ {
		if _, err := h.Insert(Tuple{IntVal(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	rids, err := h.RIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != n {
		t.Fatalf("got %d rids", len(rids))
	}
	// Each RID must fetch the tuple the scanner yields at that position.
	for i := 0; i < n; i += 97 {
		tup, err := h.Get(rids[i])
		if err != nil {
			t.Fatal(err)
		}
		if tup[0].Int != int64(i) {
			t.Fatalf("rid %d fetches id %d", i, tup[0].Int)
		}
	}
}
