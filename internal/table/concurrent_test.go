package table

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"tensorbase/internal/storage"
)

// Writers appending while readers Get, Scan, and Count: the heap's latch
// must keep every reader on a consistent page image. Each tuple is
// self-describing (id column matches the vector contents), so a reader
// that decodes a half-applied insert fails loudly. Run under -race this is
// the heap latching contract's regression test.
func TestHeapConcurrentInsertAndRead(t *testing.T) {
	d, err := storage.OpenDisk(filepath.Join(t.TempDir(), "heap.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	schema := MustSchema(
		Column{Name: "id", Type: Int64},
		Column{Name: "f", Type: Float64},
		Column{Name: "vec", Type: FloatVec},
	)
	h, err := NewHeap(storage.NewBufferPool(d, 64), schema)
	if err != nil {
		t.Fatal(err)
	}

	mk := func(id int64) Tuple {
		vec := make([]float32, 32)
		for i := range vec {
			vec[i] = float32(id)
		}
		return Tuple{IntVal(id), FloatVal(float64(id)), VecVal(vec)}
	}
	check := func(tp Tuple) error {
		id := tp[0].Int
		if tp[1].Float != float64(id) {
			return fmt.Errorf("tuple %d: float column torn", id)
		}
		for _, v := range tp[2].Vec {
			if v != float32(id) {
				return fmt.Errorf("tuple %d: vector torn", id)
			}
		}
		return nil
	}

	var (
		mu   sync.Mutex
		rids []RID
	)
	var wg sync.WaitGroup
	errs := make(chan error, 6)

	// Two writers share the id space without colliding.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < 400; i++ {
				rid, err := h.Insert(mk(base + i))
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				rids = append(rids, rid)
				mu.Unlock()
			}
		}(int64(w) * 1000)
	}

	// Point readers chase the growing RID list.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var tp Tuple
			var scratch []float32
			for i := 0; i < 2000; i++ {
				mu.Lock()
				n := len(rids)
				var rid RID
				if n > 0 {
					rid = rids[i%n]
				}
				mu.Unlock()
				if n == 0 {
					continue
				}
				var err error
				tp, scratch, err = h.GetInto(rid, tp, scratch)
				if err != nil {
					errs <- err
					return
				}
				if err := check(tp); err != nil {
					errs <- err
					return
				}
			}
		}()
	}

	// A scanner walks the heap end to end, repeatedly, while it grows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for pass := 0; pass < 20; pass++ {
			sc := h.Scan()
			for {
				tp, ok, err := sc.Next()
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					break
				}
				if err := check(tp); err != nil {
					errs <- err
					return
				}
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := h.Count(); got != 800 {
		t.Fatalf("count = %d, want 800", got)
	}
	// Every inserted tuple is reachable afterwards.
	all, err := h.RIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 800 {
		t.Fatalf("RIDs = %d, want 800", len(all))
	}
}
