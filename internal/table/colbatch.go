package table

import (
	"encoding/binary"
	"fmt"
	"math"

	"tensorbase/internal/storage"
)

// Columnar batch decode: the PREDICT hot path reads a heap of feature
// vectors, flattens them into one dense (rows × width) matrix, and hands the
// matrix to a model. The row-at-a-time path decodes each record into a fresh
// tuple and then copies its feature vector into the batch buffer — one
// decode pass plus one copy per row. A ColBatch fuses the two: the feature
// column of every record is bulk-decoded (decodeF32s) straight into one
// contiguous Feats buffer sized for the whole batch, and that buffer IS the
// input tensor's backing array. Tuples' feature values alias disjoint
// segments of Feats, so nothing is decoded or copied twice.

// ColBatch accumulates up to a fixed number of decoded rows with the
// designated FloatVec feature column landing in one contiguous buffer.
// Tuples[i]'s feature value aliases Feats[i*Width:(i+1)*Width]; both are
// valid as long as the batch itself, so a batch must not be reused while
// downstream holds its tuples — allocate one per batch.
type ColBatch struct {
	schema  *Schema
	featIdx int
	rows    int // capacity

	// Width is the feature vector width, fixed by the first appended row.
	Width int
	// Feats holds the appended rows' feature vectors back to back:
	// len(Feats) == len(Tuples)*Width.
	Feats []float32
	// Tuples holds the decoded rows in append order.
	Tuples []Tuple
}

// NewColBatch returns an empty batch of at most rows tuples of schema s,
// collecting feature column featIdx (which must be a FloatVec column).
func NewColBatch(s *Schema, featIdx, rows int) (*ColBatch, error) {
	if featIdx < 0 || featIdx >= s.Len() || s.Cols[featIdx].Type != FloatVec {
		return nil, fmt.Errorf("table: columnar batch feature column %d is not a FloatVec column of the schema", featIdx)
	}
	if rows < 1 {
		return nil, fmt.Errorf("table: columnar batch capacity %d < 1", rows)
	}
	return &ColBatch{schema: s, featIdx: featIdx, rows: rows, Width: -1, Tuples: make([]Tuple, 0, rows)}, nil
}

// Rows returns the number of appended rows.
func (cb *ColBatch) Rows() int { return len(cb.Tuples) }

// Full reports whether the batch reached its row capacity.
func (cb *ColBatch) Full() bool { return len(cb.Tuples) >= cb.rows }

// AppendRecord decodes one encoded record into the batch. The feature
// column is swept directly into the next Feats segment; other columns decode
// as usual. All rows must agree on the feature width (the first row fixes
// it, and fixes the Feats allocation at capacity×width, so the buffer never
// reallocates and earlier rows' aliases stay valid).
func (cb *ColBatch) AppendRecord(rec []byte) error {
	if cb.Full() {
		return fmt.Errorf("table: columnar batch is full (%d rows)", cb.rows)
	}
	if _, err := measureVecs(cb.schema, rec); err != nil {
		return err
	}
	t := make(Tuple, cb.schema.Len())
	off := 0
	for i, c := range cb.schema.Cols {
		switch c.Type {
		case Int64:
			t[i] = IntVal(int64(binary.LittleEndian.Uint64(rec[off:])))
			off += 8
		case Float64:
			t[i] = FloatVal(math.Float64frombits(binary.LittleEndian.Uint64(rec[off:])))
			off += 8
		case Text:
			n, sz := binary.Uvarint(rec[off:])
			off += sz
			t[i] = TextVal(string(rec[off : off+int(n)]))
			off += int(n)
		case FloatVec:
			n, sz := binary.Uvarint(rec[off:])
			off += sz
			var vec []float32
			if i == cb.featIdx {
				if cb.Width < 0 {
					cb.Width = int(n)
					cb.Feats = make([]float32, 0, cb.rows*cb.Width)
				} else if int(n) != cb.Width {
					return fmt.Errorf("table: ragged feature vectors in columnar batch (%d vs %d)", n, cb.Width)
				}
				used := len(cb.Feats)
				cb.Feats = cb.Feats[: used+int(n) : cap(cb.Feats)]
				vec = cb.Feats[used : used+int(n) : used+int(n)]
			} else {
				vec = make([]float32, n)
			}
			decodeF32s(vec, rec[off:])
			off += 4 * int(n)
			t[i] = VecVal(vec)
		}
	}
	if off != len(rec) {
		return fmt.Errorf("table: %d trailing bytes after decoding tuple", len(rec)-off)
	}
	cb.Tuples = append(cb.Tuples, t)
	return nil
}

// NextColumnar fills cb with tuples from the scan position until the batch
// is full or the heap is exhausted, returning the number appended. Unlike
// Next, which pins its page once per tuple, one call pins each visited page
// once for all its records. It holds the heap's read latch like Next, so it
// interleaves safely with concurrent inserts, and applies the scanner's
// snapshot CSN, so the PREDICT hot path gets snapshot isolation at columnar
// speed. A return of fewer rows than the batch's free capacity means the
// scan reached the end of the heap.
func (s *Scanner) NextColumnar(cb *ColBatch) (int, error) {
	s.heap.mu.RLock()
	defer s.heap.mu.RUnlock()
	appended := 0
	for !s.done && !cb.Full() {
		f, err := s.heap.pool.Fetch(s.page)
		if err != nil {
			return appended, err
		}
		page := f.Page()
		for s.slot < page.NumSlots() && !cb.Full() {
			rec, ok, rerr := page.Record(s.slot)
			if rerr != nil {
				s.heap.pool.Unpin(s.page, false)
				return appended, fmt.Errorf("table: page %d slot %d: %w", s.page, s.slot, rerr)
			}
			slot := s.slot
			s.slot++
			if !ok {
				continue // deleted
			}
			vis, verr := visibleAt(rec, s.snap)
			if verr != nil {
				s.heap.pool.Unpin(s.page, false)
				return appended, fmt.Errorf("table: page %d slot %d: %w", s.page, slot, verr)
			}
			if !vis {
				continue // outside this snapshot
			}
			if err := cb.AppendRecord(rec[versionHdrSize:]); err != nil {
				s.heap.pool.Unpin(s.page, false)
				return appended, err
			}
			appended++
		}
		pageDone := s.slot >= page.NumSlots()
		next := page.Next()
		if err := s.heap.pool.Unpin(s.page, false); err != nil {
			return appended, err
		}
		if !pageDone {
			break // batch filled mid-page; resume here next call
		}
		if next == storage.InvalidPageID {
			s.done = true
			break
		}
		s.page = next
		s.slot = 0
	}
	return appended, nil
}
