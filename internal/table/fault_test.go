package table

import (
	"errors"
	"path/filepath"
	"testing"

	"tensorbase/internal/fault"
	"tensorbase/internal/storage"
)

// newFaultyHeap returns a heap of n int rows spanning many pages, over a
// pool small enough that scans must re-read pages from disk, with a fault
// injector installed and its setup traffic already discounted.
func newFaultyHeap(t *testing.T, n, frames int) (*Heap, *storage.BufferPool, *fault.Injector) {
	t.Helper()
	d, err := storage.OpenDisk(filepath.Join(t.TempDir(), "hf.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	inj := fault.New()
	d.SetFaults(inj)
	pool := storage.NewBufferPool(d, frames)
	// Wide rows (a 64-float vector) so the heap spans far more pages than
	// the pool has frames — scans and gets must actually hit the disk.
	h, err := NewHeap(pool, MustSchema(Column{"id", Int64}, Column{"f", FloatVec}))
	if err != nil {
		t.Fatal(err)
	}
	vec := make([]float32, 64)
	for i := 0; i < n; i++ {
		if _, err := h.Insert(Tuple{IntVal(int64(i)), VecVal(vec)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	inj.Reset()
	return h, pool, inj
}

func scanAll(h *Heap) (int, error) {
	sc := h.Scan()
	count := 0
	for {
		_, ok, err := sc.Next()
		if err != nil {
			return count, err
		}
		if !ok {
			return count, nil
		}
		count++
	}
}

func TestHeapScanSurfacesReadFault(t *testing.T) {
	const n = 5000
	h, pool, inj := newFaultyHeap(t, n, 4)
	errIO := errors.New("scan read error")
	inj.FailAt("disk.read", errIO, 3)

	if _, err := scanAll(h); !errors.Is(err, errIO) {
		t.Fatalf("scan err = %v, want injected read fault", err)
	}
	if got := pool.Pinned(); got != 0 {
		t.Fatalf("pinned frames after failed scan = %d, want 0", got)
	}
	// Healed, the same heap scans completely.
	inj.Clear("disk.read")
	count, err := scanAll(h)
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("healed scan saw %d rows, want %d", count, n)
	}
}

func TestHeapScanSurfacesBitFlipAsChecksumError(t *testing.T) {
	h, pool, inj := newFaultyHeap(t, 5000, 4)
	inj.CorruptAt("disk.corrupt", 2)

	_, err := scanAll(h)
	if !errors.Is(err, storage.ErrChecksum) {
		t.Fatalf("scan err = %v, want ErrChecksum", err)
	}
	if got := pool.Pinned(); got != 0 {
		t.Fatalf("pinned frames = %d, want 0", got)
	}
}

func TestHeapGetSurfacesReadFault(t *testing.T) {
	h, pool, inj := newFaultyHeap(t, 5000, 4)
	rids, err := h.RIDs()
	if err != nil {
		t.Fatal(err)
	}
	inj.Reset() // RIDs paged through the heap too
	errIO := errors.New("get read error")
	inj.FailAfter("disk.read", errIO, 1)

	sawErr := false
	for _, rid := range rids {
		if _, err := h.Get(rid); err != nil {
			if !errors.Is(err, errIO) {
				t.Fatalf("Get err = %v, want injected read fault", err)
			}
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("no Get missed the pool; shrink frames or grow the heap")
	}
	if got := pool.Pinned(); got != 0 {
		t.Fatalf("pinned frames = %d, want 0", got)
	}
}
