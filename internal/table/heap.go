package table

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"tensorbase/internal/storage"
)

// RID identifies a record: page + slot.
type RID struct {
	Page storage.PageID
	Slot int
}

// MVCC version header. Every stored record is prefixed with two
// little-endian uint64s: the commit sequence number (CSN) that created the
// row and the CSN that deleted it. A snapshot pinned at CSN s sees a row
// iff created ≤ s < deleted. Two sentinels keep the scheme zero-cost for
// non-transactional users:
//
//   - created == 0 ("always") marks a row visible to every snapshot — the
//     stamp plain Insert/InsertRecord writes, so direct heap users (spill
//     runs, tensor block stores, tests) never think about versions;
//   - deleted == CSNMax ("never") marks a live row.
//
// Rows are only ever stamped by the engine's commit protocol (InsertAt) or
// physically removed (Rollback, for aborted statements), so a committed
// row's header never changes after publication.
const (
	versionHdrSize = 16
	// CSNAlways marks a record visible to every snapshot.
	CSNAlways = uint64(0)
	// CSNMax is the "latest" snapshot: it sees every non-deleted row.
	CSNMax = ^uint64(0)
)

// visibleAt reports whether the version-prefixed record rec is visible to a
// snapshot pinned at snap.
func visibleAt(rec []byte, snap uint64) (bool, error) {
	if len(rec) < versionHdrSize {
		return false, fmt.Errorf("table: %d-byte record shorter than version header", len(rec))
	}
	created := binary.LittleEndian.Uint64(rec)
	deleted := binary.LittleEndian.Uint64(rec[8:])
	return created <= snap && (deleted == CSNMax || snap < deleted), nil
}

// payload strips the version header off a stored record.
func payload(rec []byte) ([]byte, error) {
	if len(rec) < versionHdrSize {
		return nil, fmt.Errorf("table: %d-byte record shorter than version header", len(rec))
	}
	return rec[versionHdrSize:], nil
}

// MaxTupleSize is the largest encoded tuple a heap accepts: a page record
// minus the version header.
const MaxTupleSize = storage.MaxRecordSize - versionHdrSize

// Heap is an unordered collection of tuples stored as a chain of slotted
// pages in the buffer pool. Large tuples are rejected rather than
// overflow-chained; tensor blocks are sized by the caller to fit a page.
//
// Latching contract: the heap carries one reader/writer latch. Insert and
// InsertRecord take it exclusively — they mutate the tail page's bytes, the
// chain pointers, and the row count, so writers serialise. Get, GetInto,
// Scanner.Next, RIDs, and Count take it shared, so any number of readers
// runs concurrently (with each other, and with readers of other heaps on
// the same buffer pool). Page pins protect resident bytes from eviction;
// the latch is what keeps a reader from observing a half-applied insert
// into the page it is decoding. This is what lets the parallel relation-
// centric executor fan block fetches and result appends across workers.
//
// Above the latch sits the statement-scoped read gate (BeginRead/EndRead/
// Drain): since MVCC snapshot reads no longer hold table locks, DROP TABLE
// uses the gate to wait out in-flight read statements before handing the
// heap's pages to the free list.
type Heap struct {
	mu     sync.RWMutex
	pool   *storage.BufferPool
	schema *Schema
	first  storage.PageID
	last   storage.PageID
	count  int64

	// gate is held shared for the duration of a lock-free read statement
	// and exclusively by DROP TABLE before page reclamation. It orders
	// whole statements, not page accesses — that is mu's job.
	gate sync.RWMutex
}

// NewHeap creates an empty heap with one allocated page.
func NewHeap(pool *storage.BufferPool, schema *Schema) (*Heap, error) {
	f, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	id := f.ID()
	if err := pool.Unpin(id, true); err != nil {
		return nil, err
	}
	return &Heap{pool: pool, schema: schema, first: id, last: id}, nil
}

// OpenHeap re-attaches to an existing chain starting at first. The caller
// supplies the row count (tracked by the catalog).
func OpenHeap(pool *storage.BufferPool, schema *Schema, first, last storage.PageID, count int64) *Heap {
	return &Heap{pool: pool, schema: schema, first: first, last: last, count: count}
}

// Schema returns the heap's tuple schema.
func (h *Heap) Schema() *Schema { return h.schema }

// FirstPage returns the head of the page chain.
func (h *Heap) FirstPage() storage.PageID { return h.first }

// LastPage returns the tail of the page chain.
func (h *Heap) LastPage() storage.PageID {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.last
}

// Count returns the number of inserted tuples.
func (h *Heap) Count() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.count
}

// BeginRead enters the heap's statement read gate: it blocks while a DROP
// is draining readers, and DROP's reclamation blocks until every reader
// that entered has left. The engine brackets each lock-free read statement
// with BeginRead/EndRead.
func (h *Heap) BeginRead() { h.gate.RLock() }

// EndRead leaves the statement read gate.
func (h *Heap) EndRead() { h.gate.RUnlock() }

// Drain blocks until every in-flight read statement has left the gate and
// holds new ones out until Release is called. DROP TABLE drains a heap
// after unpublishing it from the catalog and before freeing its pages.
func (h *Heap) Drain() { h.gate.Lock() }

// Release reopens the gate after Drain. Readers that then enter must
// re-check the catalog: the heap they gated on may no longer be published.
func (h *Heap) Release() { h.gate.Unlock() }

// Insert appends a tuple visible to every snapshot and returns its RID,
// extending the page chain as needed. Insert is latched: concurrent
// inserters serialise, and readers never see a partially written tail page.
func (h *Heap) Insert(t Tuple) (RID, error) {
	return h.InsertAt(t, CSNAlways)
}

// InsertAt appends a tuple stamped with the creating statement's CSN: rows
// become visible only to snapshots pinned at or after csn, which the
// engine's commit protocol publishes after the WAL commit is durable.
func (h *Heap) InsertAt(t Tuple, csn uint64) (RID, error) {
	rec, err := Encode(h.schema, t)
	if err != nil {
		return RID{}, err
	}
	return h.InsertRecordAt(rec, csn)
}

// InsertRecord appends a pre-encoded record visible to every snapshot.
func (h *Heap) InsertRecord(rec []byte) (RID, error) {
	return h.InsertRecordAt(rec, CSNAlways)
}

// InsertRecordAt appends a pre-encoded record under the heap's write latch,
// stamped with csn (see InsertAt).
func (h *Heap) InsertRecordAt(rec []byte, csn uint64) (RID, error) {
	if len(rec) > MaxTupleSize {
		return RID{}, fmt.Errorf("table: record of %d bytes exceeds page capacity %d", len(rec), MaxTupleSize)
	}
	stored := make([]byte, versionHdrSize+len(rec))
	binary.LittleEndian.PutUint64(stored, csn)
	binary.LittleEndian.PutUint64(stored[8:], CSNMax)
	copy(stored[versionHdrSize:], rec)

	h.mu.Lock()
	defer h.mu.Unlock()
	f, err := h.pool.Fetch(h.last)
	if err != nil {
		return RID{}, err
	}
	page := f.Page()
	slot, err := page.Insert(stored)
	if err == nil {
		rid := RID{Page: h.last, Slot: slot}
		h.count++
		return rid, h.pool.Unpin(h.last, true)
	}
	if !errors.Is(err, storage.ErrPageFull) {
		h.pool.Unpin(h.last, false)
		return RID{}, err
	}
	// Extend the chain with a fresh page.
	nf, err := h.pool.NewPage()
	if err != nil {
		h.pool.Unpin(h.last, false)
		return RID{}, err
	}
	newID := nf.ID()
	page.SetNext(newID)
	if err := h.pool.Unpin(h.last, true); err != nil {
		h.pool.Unpin(newID, false)
		return RID{}, err
	}
	slot, err = nf.Page().Insert(stored)
	if err != nil {
		h.pool.Unpin(newID, false)
		return RID{}, err
	}
	h.last = newID
	h.count++
	return RID{Page: newID, Slot: slot}, h.pool.Unpin(newID, true)
}

// Rollback physically removes the records an aborted statement inserted
// (identified by the RIDs its inserts returned). The aborted rows were
// never visible to any snapshot — their CSN was never published — so
// deleting the slots leaves no trace beyond dead bytes on the page. Pages
// the statement appended to the chain stay in the chain, empty.
func (h *Heap) Rollback(rids []RID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, rid := range rids {
		f, err := h.pool.Fetch(rid.Page)
		if err != nil {
			return err
		}
		deleted := f.Page().Delete(rid.Slot)
		if err := h.pool.Unpin(rid.Page, deleted); err != nil {
			return err
		}
		if deleted {
			h.count--
		}
	}
	return nil
}

// Get fetches and decodes the tuple at rid.
func (h *Heap) Get(rid RID) (Tuple, error) {
	t, _, err := h.GetInto(rid, nil, nil)
	return t, err
}

// GetInto fetches the tuple at rid decoding into the caller's reusable
// tuple header and float scratch (see DecodeInto) — the allocation-free
// fetch path the streaming block multiply's inner loop runs per k-step.
// It takes the heap's read latch, so it is safe against concurrent Insert.
func (h *Heap) GetInto(rid RID, t Tuple, scratch []float32) (Tuple, []float32, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	f, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return nil, scratch, err
	}
	defer h.pool.Unpin(rid.Page, false)
	rec, ok, rerr := f.Record(rid.Slot)
	if rerr != nil {
		return nil, scratch, fmt.Errorf("table: record at page %d slot %d: %w", rid.Page, rid.Slot, rerr)
	}
	if !ok {
		return nil, scratch, fmt.Errorf("table: no record at page %d slot %d", rid.Page, rid.Slot)
	}
	body, err := payload(rec)
	if err != nil {
		return nil, scratch, fmt.Errorf("table: page %d slot %d: %w", rid.Page, rid.Slot, err)
	}
	return DecodeInto(h.schema, body, t, scratch)
}

// RIDs returns the record ids of every record visible to the latest
// snapshot, in scan order — the same order Scan yields tuples, so position
// n of both refers to the same row. Index builders use this to map index
// entries back to records.
func (h *Heap) RIDs() ([]RID, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var out []RID
	page := h.first
	for page != storage.InvalidPageID {
		f, err := h.pool.Fetch(page)
		if err != nil {
			return nil, err
		}
		p := f.Page()
		for slot := 0; slot < p.NumSlots(); slot++ {
			rec, ok, rerr := p.Record(slot)
			if rerr != nil {
				h.pool.Unpin(page, false)
				return nil, fmt.Errorf("table: page %d slot %d: %w", page, slot, rerr)
			}
			if !ok {
				continue
			}
			vis, verr := visibleAt(rec, CSNMax)
			if verr != nil {
				h.pool.Unpin(page, false)
				return nil, fmt.Errorf("table: page %d slot %d: %w", page, slot, verr)
			}
			if vis {
				out = append(out, RID{Page: page, Slot: slot})
			}
		}
		next := p.Next()
		if err := h.pool.Unpin(page, false); err != nil {
			return nil, err
		}
		page = next
	}
	return out, nil
}

// Pages returns the heap's page chain in order, head first. DROP TABLE
// uses it to hand every page back to the storage free list.
func (h *Heap) Pages() ([]storage.PageID, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var out []storage.PageID
	seen := make(map[storage.PageID]struct{})
	page := h.first
	for page != storage.InvalidPageID {
		if _, dup := seen[page]; dup {
			return nil, fmt.Errorf("table: page chain cycles at page %d", page)
		}
		seen[page] = struct{}{}
		out = append(out, page)
		f, err := h.pool.Fetch(page)
		if err != nil {
			return nil, err
		}
		next := f.Page().Next()
		if err := h.pool.Unpin(page, false); err != nil {
			return nil, err
		}
		page = next
	}
	return out, nil
}

// LastSlots returns the tail page's slot count — recorded per table by the
// checkpoint so recovery can roll the tail back to exactly this state
// before replaying the WAL.
func (h *Heap) LastSlots() (int, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	f, err := h.pool.Fetch(h.last)
	if err != nil {
		return 0, err
	}
	n := f.Page().NumSlots()
	return n, h.pool.Unpin(h.last, false)
}

// ResetTail rolls the heap back to the state a checkpoint recorded: the
// tail page keeps its first lastSlots slots and stops chaining, and the
// row count is restored. Recovery calls it before WAL replay so replayed
// inserts land exactly once; on a cleanly closed database it is a no-op.
func (h *Heap) ResetTail(lastSlots int, count int64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	f, err := h.pool.Fetch(h.last)
	if err != nil {
		return err
	}
	p := f.Page()
	dirty := p.NumSlots() != lastSlots || p.Next() != storage.InvalidPageID
	if dirty {
		if err := p.TruncateSlots(lastSlots); err != nil {
			h.pool.Unpin(h.last, false)
			return err
		}
		p.SetNext(storage.InvalidPageID)
	}
	if err := h.pool.Unpin(h.last, dirty); err != nil {
		return err
	}
	h.count = count
	return nil
}

// Scanner iterates the heap front to back against a fixed snapshot CSN.
// It pins one page at a time, so scans of arbitrarily large heaps run in
// constant memory — the property the relation-centric execution path
// relies on.
type Scanner struct {
	heap *Heap
	snap uint64
	page storage.PageID
	slot int
	done bool
}

// Scan returns a scanner positioned before the first tuple, reading the
// latest snapshot (every non-deleted row, including unpublished ones —
// callers that need isolation use ScanAt).
func (h *Heap) Scan() *Scanner {
	return h.ScanAt(CSNMax)
}

// ScanAt returns a scanner pinned to the snapshot csn: it yields exactly
// the rows committed at or before csn, regardless of concurrent writers.
// This is the lock-free read path — no table lock is needed, because a
// writer's rows carry a CSN above every pinned snapshot until its commit
// publishes them.
func (h *Heap) ScanAt(csn uint64) *Scanner {
	return &Scanner{heap: h, snap: csn, page: h.first}
}

// Next returns the next visible tuple, or ok=false at the end. Each call
// holds the heap's read latch, so a scan interleaves safely with concurrent
// inserts; the snapshot CSN decides visibility, so rows a concurrent writer
// appends behind the scan position are skipped unless the snapshot covers
// them.
func (s *Scanner) Next() (Tuple, bool, error) {
	s.heap.mu.RLock()
	defer s.heap.mu.RUnlock()
	for !s.done {
		f, err := s.heap.pool.Fetch(s.page)
		if err != nil {
			return nil, false, err
		}
		page := f.Page()
		for s.slot < page.NumSlots() {
			rec, ok, rerr := page.Record(s.slot)
			if rerr != nil {
				s.heap.pool.Unpin(s.page, false)
				return nil, false, fmt.Errorf("table: page %d slot %d: %w", s.page, s.slot, rerr)
			}
			slot := s.slot
			s.slot++
			if !ok {
				continue // deleted
			}
			vis, verr := visibleAt(rec, s.snap)
			if verr != nil {
				s.heap.pool.Unpin(s.page, false)
				return nil, false, fmt.Errorf("table: page %d slot %d: %w", s.page, slot, verr)
			}
			if !vis {
				continue // outside this snapshot
			}
			t, err := Decode(s.heap.schema, rec[versionHdrSize:])
			if uerr := s.heap.pool.Unpin(s.page, false); uerr != nil && err == nil {
				err = uerr
			}
			if err != nil {
				return nil, false, err
			}
			return t, true, nil
		}
		next := page.Next()
		if err := s.heap.pool.Unpin(s.page, false); err != nil {
			return nil, false, err
		}
		if next == storage.InvalidPageID {
			s.done = true
			break
		}
		s.page = next
		s.slot = 0
	}
	return nil, false, nil
}
