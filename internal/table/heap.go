package table

import (
	"errors"
	"fmt"
	"sync"

	"tensorbase/internal/storage"
)

// RID identifies a record: page + slot.
type RID struct {
	Page storage.PageID
	Slot int
}

// Heap is an unordered collection of tuples stored as a chain of slotted
// pages in the buffer pool. Large tuples are rejected rather than
// overflow-chained; tensor blocks are sized by the caller to fit a page.
//
// Latching contract: the heap carries one reader/writer latch. Insert and
// InsertRecord take it exclusively — they mutate the tail page's bytes, the
// chain pointers, and the row count, so writers serialise. Get, GetInto,
// Scanner.Next, RIDs, and Count take it shared, so any number of readers
// runs concurrently (with each other, and with readers of other heaps on
// the same buffer pool). Page pins protect resident bytes from eviction;
// the latch is what keeps a reader from observing a half-applied insert
// into the page it is decoding. This is what lets the parallel relation-
// centric executor fan block fetches and result appends across workers.
type Heap struct {
	mu     sync.RWMutex
	pool   *storage.BufferPool
	schema *Schema
	first  storage.PageID
	last   storage.PageID
	count  int64
}

// NewHeap creates an empty heap with one allocated page.
func NewHeap(pool *storage.BufferPool, schema *Schema) (*Heap, error) {
	f, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	id := f.ID()
	if err := pool.Unpin(id, true); err != nil {
		return nil, err
	}
	return &Heap{pool: pool, schema: schema, first: id, last: id}, nil
}

// OpenHeap re-attaches to an existing chain starting at first. The caller
// supplies the row count (tracked by the catalog).
func OpenHeap(pool *storage.BufferPool, schema *Schema, first, last storage.PageID, count int64) *Heap {
	return &Heap{pool: pool, schema: schema, first: first, last: last, count: count}
}

// Schema returns the heap's tuple schema.
func (h *Heap) Schema() *Schema { return h.schema }

// FirstPage returns the head of the page chain.
func (h *Heap) FirstPage() storage.PageID { return h.first }

// LastPage returns the tail of the page chain.
func (h *Heap) LastPage() storage.PageID { return h.last }

// Count returns the number of inserted tuples.
func (h *Heap) Count() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.count
}

// Insert appends a tuple and returns its RID, extending the page chain as
// needed. Insert is latched: concurrent inserters serialise, and readers
// never see a partially written tail page.
func (h *Heap) Insert(t Tuple) (RID, error) {
	rec, err := Encode(h.schema, t)
	if err != nil {
		return RID{}, err
	}
	return h.InsertRecord(rec)
}

// InsertRecord appends a pre-encoded record under the heap's write latch.
func (h *Heap) InsertRecord(rec []byte) (RID, error) {
	if len(rec) > storage.MaxRecordSize {
		return RID{}, fmt.Errorf("table: record of %d bytes exceeds page capacity %d", len(rec), storage.MaxRecordSize)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	f, err := h.pool.Fetch(h.last)
	if err != nil {
		return RID{}, err
	}
	page := f.Page()
	slot, err := page.Insert(rec)
	if err == nil {
		rid := RID{Page: h.last, Slot: slot}
		h.count++
		return rid, h.pool.Unpin(h.last, true)
	}
	if !errors.Is(err, storage.ErrPageFull) {
		h.pool.Unpin(h.last, false)
		return RID{}, err
	}
	// Extend the chain with a fresh page.
	nf, err := h.pool.NewPage()
	if err != nil {
		h.pool.Unpin(h.last, false)
		return RID{}, err
	}
	newID := nf.ID()
	page.SetNext(newID)
	if err := h.pool.Unpin(h.last, true); err != nil {
		h.pool.Unpin(newID, false)
		return RID{}, err
	}
	slot, err = nf.Page().Insert(rec)
	if err != nil {
		h.pool.Unpin(newID, false)
		return RID{}, err
	}
	h.last = newID
	h.count++
	return RID{Page: newID, Slot: slot}, h.pool.Unpin(newID, true)
}

// Get fetches and decodes the tuple at rid.
func (h *Heap) Get(rid RID) (Tuple, error) {
	t, _, err := h.GetInto(rid, nil, nil)
	return t, err
}

// GetInto fetches the tuple at rid decoding into the caller's reusable
// tuple header and float scratch (see DecodeInto) — the allocation-free
// fetch path the streaming block multiply's inner loop runs per k-step.
// It takes the heap's read latch, so it is safe against concurrent Insert.
func (h *Heap) GetInto(rid RID, t Tuple, scratch []float32) (Tuple, []float32, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	f, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return nil, scratch, err
	}
	defer h.pool.Unpin(rid.Page, false)
	rec, ok, rerr := f.Record(rid.Slot)
	if rerr != nil {
		return nil, scratch, fmt.Errorf("table: record at page %d slot %d: %w", rid.Page, rid.Slot, rerr)
	}
	if !ok {
		return nil, scratch, fmt.Errorf("table: no record at page %d slot %d", rid.Page, rid.Slot)
	}
	return DecodeInto(h.schema, rec, t, scratch)
}

// RIDs returns the record ids of every live record in scan order — the
// same order Scan yields tuples, so position n of both refers to the same
// row. Index builders use this to map index entries back to records.
func (h *Heap) RIDs() ([]RID, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var out []RID
	page := h.first
	for page != storage.InvalidPageID {
		f, err := h.pool.Fetch(page)
		if err != nil {
			return nil, err
		}
		p := f.Page()
		for slot := 0; slot < p.NumSlots(); slot++ {
			_, ok, rerr := p.Record(slot)
			if rerr != nil {
				h.pool.Unpin(page, false)
				return nil, fmt.Errorf("table: page %d slot %d: %w", page, slot, rerr)
			}
			if ok {
				out = append(out, RID{Page: page, Slot: slot})
			}
		}
		next := p.Next()
		if err := h.pool.Unpin(page, false); err != nil {
			return nil, err
		}
		page = next
	}
	return out, nil
}

// Pages returns the heap's page chain in order, head first. DROP TABLE
// uses it to hand every page back to the storage free list.
func (h *Heap) Pages() ([]storage.PageID, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var out []storage.PageID
	seen := make(map[storage.PageID]struct{})
	page := h.first
	for page != storage.InvalidPageID {
		if _, dup := seen[page]; dup {
			return nil, fmt.Errorf("table: page chain cycles at page %d", page)
		}
		seen[page] = struct{}{}
		out = append(out, page)
		f, err := h.pool.Fetch(page)
		if err != nil {
			return nil, err
		}
		next := f.Page().Next()
		if err := h.pool.Unpin(page, false); err != nil {
			return nil, err
		}
		page = next
	}
	return out, nil
}

// Scanner iterates the heap front to back. It pins one page at a time, so
// scans of arbitrarily large heaps run in constant memory — the property
// the relation-centric execution path relies on.
type Scanner struct {
	heap *Heap
	page storage.PageID
	slot int
	done bool
}

// Scan returns a scanner positioned before the first tuple.
func (h *Heap) Scan() *Scanner {
	return &Scanner{heap: h, page: h.first}
}

// Next returns the next tuple, or ok=false at the end. Each call holds the
// heap's read latch, so a scan interleaves safely with concurrent inserts
// (tuples inserted behind the scan position may or may not be seen).
func (s *Scanner) Next() (Tuple, bool, error) {
	s.heap.mu.RLock()
	defer s.heap.mu.RUnlock()
	for !s.done {
		f, err := s.heap.pool.Fetch(s.page)
		if err != nil {
			return nil, false, err
		}
		page := f.Page()
		for s.slot < page.NumSlots() {
			rec, ok, rerr := page.Record(s.slot)
			if rerr != nil {
				s.heap.pool.Unpin(s.page, false)
				return nil, false, fmt.Errorf("table: page %d slot %d: %w", s.page, s.slot, rerr)
			}
			s.slot++
			if !ok {
				continue // deleted
			}
			t, err := Decode(s.heap.schema, rec)
			if uerr := s.heap.pool.Unpin(s.page, false); uerr != nil && err == nil {
				err = uerr
			}
			if err != nil {
				return nil, false, err
			}
			return t, true, nil
		}
		next := page.Next()
		if err := s.heap.pool.Unpin(s.page, false); err != nil {
			return nil, false, err
		}
		if next == storage.InvalidPageID {
			s.done = true
			break
		}
		s.page = next
		s.slot = 0
	}
	return nil, false, nil
}
