package table

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Value is one tuple field. Exactly the member matching Type is meaningful.
type Value struct {
	Type  ColType
	Int   int64
	Float float64
	Str   string
	Vec   []float32
}

// IntVal returns an Int64 value.
func IntVal(v int64) Value { return Value{Type: Int64, Int: v} }

// FloatVal returns a Float64 value.
func FloatVal(v float64) Value { return Value{Type: Float64, Float: v} }

// TextVal returns a Text value.
func TextVal(v string) Value { return Value{Type: Text, Str: v} }

// VecVal returns a FloatVec value. The slice is not copied.
func VecVal(v []float32) Value { return Value{Type: FloatVec, Vec: v} }

// String implements fmt.Stringer.
func (v Value) String() string {
	switch v.Type {
	case Int64:
		return fmt.Sprintf("%d", v.Int)
	case Float64:
		return fmt.Sprintf("%g", v.Float)
	case Text:
		return v.Str
	case FloatVec:
		if len(v.Vec) <= 8 {
			return fmt.Sprintf("%v", v.Vec)
		}
		return fmt.Sprintf("vec[%d]", len(v.Vec))
	default:
		return "<nil>"
	}
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.Type != o.Type {
		return false
	}
	switch v.Type {
	case Int64:
		return v.Int == o.Int
	case Float64:
		return v.Float == o.Float
	case Text:
		return v.Str == o.Str
	case FloatVec:
		if len(v.Vec) != len(o.Vec) {
			return false
		}
		for i := range v.Vec {
			if v.Vec[i] != o.Vec[i] {
				return false
			}
		}
		return true
	}
	return false
}

// Tuple is one row: values in schema column order.
type Tuple []Value

// Encode serialises t against schema s into a compact binary record.
func Encode(s *Schema, t Tuple) ([]byte, error) {
	if len(t) != s.Len() {
		return nil, fmt.Errorf("table: tuple has %d values, schema has %d columns", len(t), s.Len())
	}
	size := 0
	for i, v := range t {
		if v.Type != s.Cols[i].Type {
			return nil, fmt.Errorf("table: column %q: value type %v, want %v", s.Cols[i].Name, v.Type, s.Cols[i].Type)
		}
		switch v.Type {
		case Int64, Float64:
			size += 8
		case Text:
			size += binary.MaxVarintLen64 + len(v.Str)
		case FloatVec:
			size += binary.MaxVarintLen64 + 4*len(v.Vec)
		}
	}
	buf := make([]byte, 0, size)
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range t {
		switch v.Type {
		case Int64:
			binary.LittleEndian.PutUint64(tmp[:8], uint64(v.Int))
			buf = append(buf, tmp[:8]...)
		case Float64:
			binary.LittleEndian.PutUint64(tmp[:8], math.Float64bits(v.Float))
			buf = append(buf, tmp[:8]...)
		case Text:
			n := binary.PutUvarint(tmp[:], uint64(len(v.Str)))
			buf = append(buf, tmp[:n]...)
			buf = append(buf, v.Str...)
		case FloatVec:
			n := binary.PutUvarint(tmp[:], uint64(len(v.Vec)))
			buf = append(buf, tmp[:n]...)
			for _, f := range v.Vec {
				binary.LittleEndian.PutUint32(tmp[:4], math.Float32bits(f))
				buf = append(buf, tmp[:4]...)
			}
		}
	}
	return buf, nil
}

// Decode deserialises a record produced by Encode against schema s.
func Decode(s *Schema, rec []byte) (Tuple, error) {
	t, _, err := DecodeInto(s, rec, nil, nil)
	return t, err
}

// DecodeInto deserialises a record like Decode, but reuses the caller's
// tuple header (when cap(t) suffices) and carves FloatVec payloads out of
// scratch (grown as needed and returned for the next call) instead of
// allocating per record. Block-streaming inner loops use it to fetch one
// tensor block per k-step with zero steady-state allocations. The returned
// tuple and its vector fields alias the buffers and are only valid until
// the next DecodeInto with the same buffers.
func DecodeInto(s *Schema, rec []byte, t Tuple, scratch []float32) (Tuple, []float32, error) {
	if cap(t) >= s.Len() {
		t = t[:s.Len()]
	} else {
		t = make(Tuple, s.Len())
	}
	// Measure pass: total float payload, so every vector column can be
	// carved from one stable backing array (growing mid-decode would
	// invalidate earlier columns' slices).
	floats, err := measureVecs(s, rec)
	if err != nil {
		return nil, scratch, err
	}
	if cap(scratch) < floats {
		scratch = make([]float32, floats)
	}
	scratch = scratch[:cap(scratch)]
	used := 0
	off := 0
	for i, c := range s.Cols {
		switch c.Type {
		case Int64:
			t[i] = IntVal(int64(binary.LittleEndian.Uint64(rec[off:])))
			off += 8
		case Float64:
			t[i] = FloatVal(math.Float64frombits(binary.LittleEndian.Uint64(rec[off:])))
			off += 8
		case Text:
			n, sz := binary.Uvarint(rec[off:])
			off += sz
			t[i] = TextVal(string(rec[off : off+int(n)]))
			off += int(n)
		case FloatVec:
			n, sz := binary.Uvarint(rec[off:])
			off += sz
			vec := scratch[used : used+int(n) : used+int(n)]
			used += int(n)
			decodeF32s(vec, rec[off:])
			off += 4 * int(n)
			t[i] = VecVal(vec)
		}
	}
	if off != len(rec) {
		return nil, scratch, fmt.Errorf("table: %d trailing bytes after decoding tuple", len(rec)-off)
	}
	return t, scratch, nil
}

// decodeF32s bulk-decodes little-endian float32 payload bytes into dst. The
// caller has already bounds-checked src against the record (measureVecs);
// re-slicing src to exactly the payload hoists the per-element checks, so
// the loop compiles to a straight load/convert/store sweep. This one helper
// is the decode inner loop for both the row path (DecodeInto) and the
// columnar path (ColBatch.AppendRecord).
func decodeF32s(dst []float32, src []byte) {
	src = src[: 4*len(dst) : 4*len(dst)]
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
}

// measureVecs walks the record validating field bounds and returns the
// total FloatVec element count.
func measureVecs(s *Schema, rec []byte) (int, error) {
	floats := 0
	off := 0
	for _, c := range s.Cols {
		switch c.Type {
		case Int64, Float64:
			if off+8 > len(rec) {
				return 0, truncErr(c.Name)
			}
			off += 8
		case Text:
			n, sz := binary.Uvarint(rec[off:])
			// Reject n before converting to int: a corrupt uvarint near 2^64
			// goes negative as an int and would sail through the bounds check
			// only to blow up the slicing in DecodeInto.
			if sz <= 0 || n > uint64(len(rec)) || off+sz+int(n) > len(rec) {
				return 0, truncErr(c.Name)
			}
			off += sz + int(n)
		case FloatVec:
			n, sz := binary.Uvarint(rec[off:])
			if sz <= 0 || n > uint64(len(rec))/4 || off+sz+4*int(n) > len(rec) {
				return 0, truncErr(c.Name)
			}
			off += sz + 4*int(n)
			floats += int(n)
		}
	}
	return floats, nil
}

func truncErr(col string) error {
	return fmt.Errorf("table: truncated record at column %q", col)
}
