package table

import (
	"path/filepath"
	"testing"
	"time"

	"tensorbase/internal/storage"
)

func mvccHeap(t *testing.T) *Heap {
	t.Helper()
	disk, err := storage.OpenDisk(filepath.Join(t.TempDir(), "mvcc.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { disk.Close() })
	pool := storage.NewBufferPool(disk, 16)
	schema, err := NewSchema(Column{Name: "id", Type: Int64})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHeap(pool, schema)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func scanIDs(t *testing.T, sc *Scanner) []int64 {
	t.Helper()
	var out []int64
	for {
		tup, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, tup[0].Int)
	}
}

// Rows stamped with a CSN are invisible to snapshots pinned before it and
// visible at or after it; CSN-0 rows are visible everywhere.
func TestSnapshotVisibility(t *testing.T) {
	h := mvccHeap(t)
	if _, err := h.Insert(Tuple{IntVal(1)}); err != nil { // CSNAlways
		t.Fatal(err)
	}
	if _, err := h.InsertAt(Tuple{IntVal(2)}, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := h.InsertAt(Tuple{IntVal(3)}, 7); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		snap uint64
		want []int64
	}{
		{0, []int64{1}},
		{4, []int64{1}},
		{5, []int64{1, 2}},
		{6, []int64{1, 2}},
		{7, []int64{1, 2, 3}},
		{CSNMax, []int64{1, 2, 3}},
	}
	for _, c := range cases {
		got := scanIDs(t, h.ScanAt(c.snap))
		if len(got) != len(c.want) {
			t.Fatalf("snap %d: got %v want %v", c.snap, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("snap %d: got %v want %v", c.snap, got, c.want)
			}
		}
	}
}

// A scanner's snapshot is fixed at creation: rows committed later are never
// yielded, even when they land ahead of the scan position.
func TestScannerPinnedAgainstLaterInserts(t *testing.T) {
	h := mvccHeap(t)
	for i := 1; i <= 3; i++ {
		if _, err := h.InsertAt(Tuple{IntVal(int64(i))}, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	sc := h.ScanAt(3)
	// One row out, then a "later commit" appears.
	if _, ok, err := sc.Next(); err != nil || !ok {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}
	if _, err := h.InsertAt(Tuple{IntVal(99)}, 9); err != nil {
		t.Fatal(err)
	}
	rest := scanIDs(t, sc)
	if len(rest) != 2 || rest[0] != 2 || rest[1] != 3 {
		t.Fatalf("rest of pinned scan = %v, want [2 3]", rest)
	}
}

// NextColumnar applies the same snapshot filter as Next.
func TestColumnarSnapshotFilter(t *testing.T) {
	disk, err := storage.OpenDisk(filepath.Join(t.TempDir(), "col.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	pool := storage.NewBufferPool(disk, 16)
	schema, err := NewSchema(Column{Name: "id", Type: Int64}, Column{Name: "features", Type: FloatVec})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHeap(pool, schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if _, err := h.InsertAt(Tuple{IntVal(int64(i)), VecVal([]float32{float32(i), float32(-i)})}, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	cb, err := NewColBatch(schema, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	n, err := h.ScanAt(6).NextColumnar(cb)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 || cb.Rows() != 6 {
		t.Fatalf("columnar snapshot scan got %d rows, want 6", n)
	}
	for i, tup := range cb.Tuples {
		if tup[0].Int != int64(i+1) || tup[1].Vec[0] != float32(i+1) {
			t.Fatalf("row %d decoded wrong: %v", i, tup)
		}
	}
}

// Rollback removes exactly the aborted statement's rows; other rows and the
// count survive, and the freed slots are reused correctly afterwards.
func TestRollbackRemovesAbortedRows(t *testing.T) {
	h := mvccHeap(t)
	if _, err := h.InsertAt(Tuple{IntVal(1)}, 1); err != nil {
		t.Fatal(err)
	}
	var aborted []RID
	for i := 0; i < 3; i++ {
		rid, err := h.InsertAt(Tuple{IntVal(int64(100 + i))}, 2)
		if err != nil {
			t.Fatal(err)
		}
		aborted = append(aborted, rid)
	}
	if err := h.Rollback(aborted); err != nil {
		t.Fatal(err)
	}
	if h.Count() != 1 {
		t.Fatalf("count %d after rollback, want 1", h.Count())
	}
	got := scanIDs(t, h.ScanAt(CSNMax))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("rows after rollback = %v, want [1]", got)
	}
	// The heap keeps accepting inserts after a rollback.
	if _, err := h.InsertAt(Tuple{IntVal(2)}, 3); err != nil {
		t.Fatal(err)
	}
	if got = scanIDs(t, h.ScanAt(CSNMax)); len(got) != 2 {
		t.Fatalf("rows after re-insert = %v", got)
	}
}

// ResetTail rolls a heap back to a checkpoint's (lastSlots, count) state:
// rows inserted after the checkpoint vanish, re-inserting them lands on the
// same slots, and the chain stops at the old tail.
func TestResetTailRestoresCheckpointState(t *testing.T) {
	h := mvccHeap(t)
	for i := 1; i <= 5; i++ {
		if _, err := h.InsertAt(Tuple{IntVal(int64(i))}, 1); err != nil {
			t.Fatal(err)
		}
	}
	slots, err := h.LastSlots()
	if err != nil {
		t.Fatal(err)
	}
	count := h.Count()
	for i := 6; i <= 9; i++ {
		if _, err := h.InsertAt(Tuple{IntVal(int64(i))}, 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.ResetTail(slots, count); err != nil {
		t.Fatal(err)
	}
	got := scanIDs(t, h.ScanAt(CSNMax))
	if len(got) != 5 || got[4] != 5 {
		t.Fatalf("rows after reset = %v, want [1..5]", got)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d after reset", h.Count())
	}
	// Replay-style re-insert sees a tail identical to the checkpoint state.
	if _, err := h.InsertAt(Tuple{IntVal(6)}, 2); err != nil {
		t.Fatal(err)
	}
	if got = scanIDs(t, h.ScanAt(CSNMax)); len(got) != 6 || got[5] != 6 {
		t.Fatalf("rows after replayed insert = %v", got)
	}
}

// The read gate: Drain blocks until readers leave, new readers block until
// Release.
func TestReadGateDrain(t *testing.T) {
	h := mvccHeap(t)
	h.BeginRead()
	drained := make(chan struct{})
	go func() {
		h.Drain()
		close(drained)
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-drained:
		t.Fatal("Drain returned while a reader was inside the gate")
	default:
	}
	h.EndRead()
	<-drained
	entered := make(chan struct{})
	go func() {
		h.BeginRead()
		close(entered)
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-entered:
		t.Fatal("BeginRead entered a drained gate")
	default:
	}
	h.Release()
	<-entered
	h.EndRead()
}
