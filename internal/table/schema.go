// Package table implements typed relational tables over the paged storage
// layer: schemas, binary tuple encoding, and chained heap files. Besides the
// usual scalar types it has a first-class float-vector column type, which is
// how feature vectors and tensor blocks live inside relations — the
// representation the paper's relation-centric architecture is built on.
//
// Panic policy: bytes read back from disk are untrusted input. Decode,
// DecodeInto, and the heap accessors validate every length and offset they
// read from a record — truncated fields, overflowing varint lengths, and
// corrupt slot directories come back as errors, never panics. Panics are
// reserved for programmer errors (a tuple that does not match its schema at
// encode time is also an error, but misuse of buffers sized by the caller
// panics as in package storage).
package table

import "fmt"

// ColType enumerates column types.
type ColType uint8

// Column types.
const (
	Int64 ColType = iota + 1
	Float64
	Text
	FloatVec // variable-length []float32, used for features and tensor blocks
)

// String implements fmt.Stringer.
func (t ColType) String() string {
	switch t {
	case Int64:
		return "INT"
	case Float64:
		return "DOUBLE"
	case Text:
		return "TEXT"
	case FloatVec:
		return "VECTOR"
	default:
		return fmt.Sprintf("ColType(%d)", uint8(t))
	}
}

// Column is one schema column.
type Column struct {
	Name string
	Type ColType
}

// Schema is an ordered list of columns. Schemas are immutable after
// construction and safe for concurrent use.
type Schema struct {
	Cols []Column
}

// NewSchema returns a schema over the given columns, rejecting duplicate or
// empty names.
func NewSchema(cols ...Column) (*Schema, error) {
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("table: empty column name")
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("table: duplicate column %q", c.Name)
		}
		if c.Type < Int64 || c.Type > FloatVec {
			return nil, fmt.Errorf("table: column %q has invalid type %d", c.Name, c.Type)
		}
		seen[c.Name] = true
	}
	return &Schema{Cols: cols}, nil
}

// MustSchema is NewSchema that panics on error, for static schemas.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// ColIndex returns the index of the named column, or -1. Schemas are
// narrow, so a linear scan beats a map and keeps lookups race-free.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Project returns a schema of the named columns in order.
func (s *Schema) Project(names ...string) (*Schema, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		i := s.ColIndex(n)
		if i < 0 {
			return nil, fmt.Errorf("table: unknown column %q", n)
		}
		cols = append(cols, s.Cols[i])
	}
	return NewSchema(cols...)
}

// Concat returns the schema of s's columns followed by o's. Name collisions
// are disambiguated with a suffix, as join outputs need.
func (s *Schema) Concat(o *Schema) *Schema {
	cols := make([]Column, 0, len(s.Cols)+len(o.Cols))
	cols = append(cols, s.Cols...)
	taken := make(map[string]bool, len(cols))
	for _, c := range cols {
		taken[c.Name] = true
	}
	for _, c := range o.Cols {
		name := c.Name
		for i := 2; taken[name]; i++ {
			name = fmt.Sprintf("%s_%d", c.Name, i)
		}
		taken[name] = true
		cols = append(cols, Column{Name: name, Type: c.Type})
	}
	return &Schema{Cols: cols}
}
