package data

import (
	"math"
	"testing"

	"tensorbase/internal/exec"
)

func TestClustersDeterministicInSeed(t *testing.T) {
	a := Clusters(42, 100, 8, 3, 0.5)
	b := Clusters(42, 100, 8, 3, 0.5)
	if !a.X.Equal(b.X) {
		t.Fatal("same seed must give same features")
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed must give same labels")
		}
	}
	c := Clusters(43, 100, 8, 3, 0.5)
	if a.X.Equal(c.X) {
		t.Fatal("different seed must differ")
	}
}

func TestClustersSeparable(t *testing.T) {
	d := Clusters(1, 500, 8, 3, 0.2)
	// Within-class distance must be far below between-class distance.
	var within, between float64
	var nw, nb int
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			var dist float64
			for k := 0; k < 8; k++ {
				diff := float64(d.X.At(i, k) - d.X.At(j, k))
				dist += diff * diff
			}
			if d.Labels[i] == d.Labels[j] {
				within += dist
				nw++
			} else {
				between += dist
				nb++
			}
		}
	}
	if nw == 0 || nb == 0 {
		t.Fatal("degenerate class assignment")
	}
	if within/float64(nw) >= between/float64(nb) {
		t.Fatal("clusters are not separable")
	}
}

func TestFraudShapes(t *testing.T) {
	d := Fraud(2, 300)
	if d.X.Dim(0) != 300 || d.X.Dim(1) != 28 {
		t.Fatalf("shape %v", d.X.Shape())
	}
	pos := 0
	for _, l := range d.Labels {
		if l != 0 && l != 1 {
			t.Fatalf("label %d", l)
		}
		pos += l
	}
	if pos == 0 || pos == 300 {
		t.Fatalf("degenerate fraud rate: %d/300", pos)
	}
}

func TestMNISTLikeLearnableStructure(t *testing.T) {
	d := MNISTLike(3, 400, 12)
	if d.X.Dim(1) != 12 || d.X.Dim(3) != 1 {
		t.Fatalf("shape %v", d.X.Shape())
	}
	// Nearest-prototype structure: two samples of the same class must on
	// average be closer than samples of different classes.
	flat := d.FlatImages()
	var within, between float64
	var nw, nb int
	for i := 0; i < 80; i++ {
		for j := i + 1; j < 80; j++ {
			var dist float64
			for k := 0; k < flat.X.Dim(1); k++ {
				diff := float64(flat.X.At(i, k) - flat.X.At(j, k))
				dist += diff * diff
			}
			if d.Labels[i] == d.Labels[j] {
				within += dist
				nw++
			} else {
				between += dist
				nb++
			}
		}
	}
	if nw == 0 || nb == 0 {
		t.Skip("sample too small for both pair kinds")
	}
	if within/float64(nw) >= between/float64(nb) {
		t.Fatal("MNIST-like classes are not separable")
	}
}

func TestFlatImagesSharesStorage(t *testing.T) {
	d := MNISTLike(4, 10, 8)
	f := d.FlatImages()
	if f.X.Dim(0) != 10 || f.X.Dim(1) != 64 {
		t.Fatalf("flat shape %v", f.X.Shape())
	}
	f.X.Set(42, 0, 0)
	if d.X.At(0, 0, 0, 0) != 42 {
		t.Fatal("FlatImages must share storage")
	}
}

func TestDenseAndImages(t *testing.T) {
	x := Dense(5, 10, 7)
	if x.Dim(0) != 10 || x.Dim(1) != 7 {
		t.Fatalf("Dense shape %v", x.Shape())
	}
	img := Images(6, 2, 5, 3)
	if img.Dim(0) != 2 || img.Dim(1) != 5 || img.Dim(3) != 3 {
		t.Fatalf("Images shape %v", img.Shape())
	}
	var nonzero int
	for _, v := range x.Data() {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("Dense produced all zeros")
	}
}

func TestBoschTablesJoinMultiplicity(t *testing.T) {
	d1, d2 := BoschTables(7, 400, 16, 4)
	if len(d1) != 400 || len(d2) != 400 {
		t.Fatalf("sizes %d/%d", len(d1), len(d2))
	}
	if len(d1[0][1].Vec) != 16 {
		t.Fatalf("feature width %d", len(d1[0][1].Vec))
	}
	// Band join with eps 0.25 (below the unit grid step) matches equal
	// keys only; expected multiplicity ≈ 4 per left row.
	j, err := exec.NewBandJoin(
		exec.NewMemScan(BoschSchema("s1", "v1"), d1),
		exec.NewMemScan(BoschSchema("s2", "v2"), d2),
		"s1", "s2", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	mult := float64(len(rows)) / 400
	if mult < 1.5 || mult > 12 {
		t.Fatalf("join multiplicity %.1f outside the expected band", mult)
	}
}

func TestFeatureRows(t *testing.T) {
	d := Clusters(8, 20, 6, 2, 0.3)
	rows, schema, err := d.FeatureRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 || schema.Len() != 3 {
		t.Fatalf("rows=%d cols=%d", len(rows), schema.Len())
	}
	for i, r := range rows {
		if r[0].Int != int64(i) {
			t.Fatal("ids must be sequential")
		}
		if len(r[1].Vec) != 6 {
			t.Fatal("wrong feature width")
		}
		if r[2].Int != int64(d.Labels[i]) {
			t.Fatal("label mismatch")
		}
	}
	img := MNISTLike(9, 5, 8)
	if _, _, err := img.FeatureRows(); err == nil {
		t.Fatal("4-D features must be rejected")
	}
}

func TestClustersStatistics(t *testing.T) {
	d := Clusters(10, 2000, 4, 1, 1.0)
	// Single cluster with unit spread: variance around the centre ≈ 1.
	var mean [4]float64
	for i := 0; i < 2000; i++ {
		for k := 0; k < 4; k++ {
			mean[k] += float64(d.X.At(i, k))
		}
	}
	for k := range mean {
		mean[k] /= 2000
	}
	var variance float64
	for i := 0; i < 2000; i++ {
		for k := 0; k < 4; k++ {
			dv := float64(d.X.At(i, k)) - mean[k]
			variance += dv * dv
		}
	}
	variance /= 2000 * 4
	if math.Abs(variance-1) > 0.15 {
		t.Fatalf("variance %.3f, want ≈ 1", variance)
	}
}
