// Package data generates the seeded synthetic datasets that stand in for
// the paper's evaluation data (credit-card fraud features, the Bosch
// production-line dataset, MNIST, land-cover imagery). Generators reproduce
// the schemas and shapes the experiments need — dimensionality, class
// structure, join-key distributions — because the latency experiments
// depend only on those, and the caching experiment needs a learnable class
// structure, which the Gaussian-cluster construction provides.
package data

import (
	"fmt"
	"math/rand"

	"tensorbase/internal/table"
	"tensorbase/internal/tensor"
)

// Classified is a labelled feature set.
type Classified struct {
	X      *tensor.Tensor // (n, features) or (n, h, w, c)
	Labels []int
}

// Clusters draws n samples of the given width from `classes` Gaussian
// clusters with the given intra-cluster spread. Cluster centres are
// deterministic in the seed.
func Clusters(seed int64, n, width, classes int, spread float64) *Classified {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, classes)
	for c := range centers {
		centers[c] = make([]float64, width)
		for j := range centers[c] {
			centers[c][j] = rng.NormFloat64() * 2
		}
	}
	x := tensor.New(n, width)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(classes)
		labels[i] = c
		row := x.Row(i)
		for j := range row {
			row[j] = float32(centers[c][j] + rng.NormFloat64()*spread)
		}
	}
	return &Classified{X: x, Labels: labels}
}

// Fraud generates transaction feature rows shaped like the paper's fraud
// workload: 28 features, 2 classes (legitimate/fraudulent), with the
// fraudulent class rare-ish and offset in feature space.
func Fraud(seed int64, n int) *Classified {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(n, 28)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		fraud := rng.Float64() < 0.2
		row := x.Row(i)
		for j := range row {
			v := rng.NormFloat64()
			if fraud {
				v += 2.5
			}
			row[j] = float32(v)
		}
		if fraud {
			labels[i] = 1
		}
	}
	return &Classified{X: x, Labels: labels}
}

// Dense returns an (n, width) tensor of standard normal features — the
// generic feature payload for latency workloads (Encoder-FC, Amazon-14k).
func Dense(seed int64, n, width int) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(n, width)
	for i := range x.Data() {
		x.Data()[i] = float32(rng.NormFloat64())
	}
	return x
}

// Images returns an (n, side, side, channels) NHWC tensor of normal pixel
// values — the LandCover / DeepBench input payload.
func Images(seed int64, n, side, channels int) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(n, side, side, channels)
	for i := range x.Data() {
		x.Data()[i] = float32(rng.NormFloat64())
	}
	return x
}

// MNISTLike draws side×side single-channel digit-like images with the
// default noise level. See MNISTLikeNoisy.
func MNISTLike(seed int64, n, side int) *Classified {
	return MNISTLikeNoisy(seed, n, side, 0.18)
}

// MNISTLikeNoisy draws side×side single-channel digit-like images: 10
// classes built as 5 sibling pairs — the odd class of each pair is the even
// class's prototype with a small fraction of pixels redrawn (like 3 vs 8 or
// 1 vs 7 in real MNIST). Samples are noisy copies of their prototype.
//
// The sibling structure is what makes the Sec. 7.2.2 trade-off real: a
// trained model keys on the few discriminative pixels and classifies with
// high accuracy, while whole-vector nearest-neighbour reuse (the result
// cache) cannot tell siblings apart once noise dominates, so approximate
// caching trades accuracy for latency.
func MNISTLikeNoisy(seed int64, n, side int, noise float64) *Classified {
	rng := rand.New(rand.NewSource(seed))
	const classes = 10
	protos := make([][]float32, classes)
	drawPixel := func() float32 {
		// Sparse bright strokes on a dark background.
		if rng.Float64() < 0.25 {
			return 0.7 + 0.3*rng.Float32()
		}
		return 0
	}
	for c := 0; c < classes; c += 2 {
		// Each pair gets its own flip fraction (0.09 … 0.25), so as noise
		// grows the pairs become nearest-neighbour-confusable one at a
		// time — a gradual accuracy/latency trade-off rather than a cliff.
		siblingFlip := 0.09 + 0.04*float64(c/2)
		p := make([]float32, side*side)
		for j := range p {
			p[j] = drawPixel()
		}
		protos[c] = p
		sib := append([]float32(nil), p...)
		for j := range sib {
			if rng.Float64() < siblingFlip {
				sib[j] = drawPixel()
			}
		}
		protos[c+1] = sib
	}
	x := tensor.New(n, side, side, 1)
	labels := make([]int, n)
	pix := side * side
	for i := 0; i < n; i++ {
		c := rng.Intn(classes)
		labels[i] = c
		dst := x.Data()[i*pix : (i+1)*pix]
		for j, v := range protos[c] {
			dst[j] = v + float32(rng.NormFloat64()*noise)
		}
	}
	return &Classified{X: x, Labels: labels}
}

// FlatImages reshapes a Classified image set to (n, side·side) for FFNN
// input, sharing storage.
func (c *Classified) FlatImages() *Classified {
	n := c.X.Dim(0)
	return &Classified{X: c.X.Reshape(n, c.X.Len()/n), Labels: c.Labels}
}

// BoschTables generates the Sec. 7.2.1 workload: a wide production-line
// feature set vertically partitioned into two tables D1 and D2 of
// featuresPerSide columns each, joined by similarity of one numeric column
// from each side. Join keys are drawn from a discretised grid so a band
// join with eps of about half the grid step produces multiplicity: each
// left row matches `multiplicity` right rows on average.
func BoschTables(seed int64, rowsPerSide, featuresPerSide int, multiplicity int) (d1, d2 []table.Tuple) {
	rng := rand.New(rand.NewSource(seed))
	if multiplicity < 1 {
		multiplicity = 1
	}
	// Grid of rowsPerSide/multiplicity distinct key values on each side.
	distinct := rowsPerSide / multiplicity
	if distinct < 1 {
		distinct = 1
	}
	gen := func() []table.Tuple {
		rows := make([]table.Tuple, rowsPerSide)
		for i := range rows {
			key := float64(rng.Intn(distinct))
			vec := make([]float32, featuresPerSide)
			for j := range vec {
				vec[j] = float32(rng.NormFloat64())
			}
			rows[i] = table.Tuple{table.FloatVal(key), table.VecVal(vec)}
		}
		return rows
	}
	return gen(), gen()
}

// BoschSchema returns the schema of a BoschTables side with the given
// column names.
func BoschSchema(simCol, vecCol string) *table.Schema {
	return table.MustSchema(
		table.Column{Name: simCol, Type: table.Float64},
		table.Column{Name: vecCol, Type: table.FloatVec},
	)
}

// FeatureRows converts a Classified set into (id, features, label) tuples.
func (c *Classified) FeatureRows() ([]table.Tuple, *table.Schema, error) {
	if c.X.Rank() != 2 {
		return nil, nil, fmt.Errorf("data: FeatureRows needs 2-D features, got %v", c.X.Shape())
	}
	schema := table.MustSchema(
		table.Column{Name: "id", Type: table.Int64},
		table.Column{Name: "features", Type: table.FloatVec},
		table.Column{Name: "label", Type: table.Int64},
	)
	n := c.X.Dim(0)
	rows := make([]table.Tuple, n)
	for i := 0; i < n; i++ {
		rows[i] = table.Tuple{
			table.IntVal(int64(i)),
			table.VecVal(append([]float32(nil), c.X.Row(i)...)),
			table.IntVal(int64(c.Labels[i])),
		}
	}
	return rows, schema, nil
}
