// Storage co-optimization (Sec. 4): the catalog keeps compressed versions
// of a model with measured accuracy and picks the smallest version meeting
// an accuracy SLA; tensor-block deduplication shares identical and
// near-identical weight blocks across stored models.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"tensorbase/internal/blocked"
	"tensorbase/internal/catalog"
	"tensorbase/internal/data"
	"tensorbase/internal/nn"
	"tensorbase/internal/storage"
	"tensorbase/internal/tensor"
)

func main() {
	// Train a model, then derive an 8-bit quantized version.
	train := data.Clusters(9, 1200, 24, 4, 0.4)
	rng := rand.New(rand.NewSource(10))
	model := nn.MustModel("classifier", []int{1, 24},
		nn.NewLinear(rng, 24, 64), nn.ReLU{},
		nn.NewLinear(rng, 64, 4), nn.Softmax{},
	)
	if _, err := nn.Train(model, train.X, train.Labels, nn.TrainConfig{
		Epochs: 8, BatchSize: 32, LR: 0.1, Seed: 11,
	}); err != nil {
		log.Fatal(err)
	}
	fullAcc := accuracy(model, train)
	quant, err := nn.Quantize8(model, "classifier")
	if err != nil {
		log.Fatal(err)
	}
	quantAcc := accuracy(quant, train)

	var fullBuf, quantBuf bytes.Buffer
	if err := nn.Save(&fullBuf, model); err != nil {
		log.Fatal(err)
	}
	if err := nn.SaveQuantized(&quantBuf, model); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original:        accuracy %.2f%%, %6d bytes on disk\n", 100*fullAcc, fullBuf.Len())
	fmt.Printf("quantized-8bit:  accuracy %.2f%%, %6d bytes on disk (%.1fx smaller)\n",
		100*quantAcc, quantBuf.Len(), float64(fullBuf.Len())/float64(quantBuf.Len()))

	// Register both in the catalog; let the SLA pick.
	cat := catalog.New()
	if err := cat.RegisterModel(model, fullAcc, "train"); err != nil {
		log.Fatal(err)
	}
	if err := cat.AddVersionSized(model.Name(), quant, "quantized-8bit", quantAcc, int64(quantBuf.Len())); err != nil {
		log.Fatal(err)
	}
	for _, sla := range []float64{quantAcc - 0.001, (quantAcc + fullAcc) / 2} {
		v, err := cat.SelectVersion(model.Name(), sla)
		if err != nil {
			// An SLA no version meets falls back to the caller's policy.
			fmt.Printf("SLA accuracy >= %.2f%% → %v\n", 100*sla, err)
			continue
		}
		fmt.Printf("SLA accuracy >= %.2f%% → serve %q (%d bytes)\n", 100*sla, v.Tag, v.Bytes)
	}

	// Deduplicate weight blocks across "two deployments" of the model.
	dir, err := os.MkdirTemp("", "tensorbase-dedup-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	disk, err := storage.OpenDisk(filepath.Join(dir, "dedup.db"))
	if err != nil {
		log.Fatal(err)
	}
	defer disk.Close()
	pool := storage.NewBufferPool(disk, 128)
	ds, err := blocked.NewDedupStore(pool, 16, 0.002)
	if err != nil {
		log.Fatal(err)
	}
	// Two deployments of the same model (e.g. per-tenant copies) share
	// every block exactly.
	w := model.Layers[0].(*nn.Linear).W
	if _, err := ds.Store(tensor.Transpose(w)); err != nil {
		log.Fatal(err)
	}
	if _, err := ds.Store(tensor.Transpose(w.Clone())); err != nil {
		log.Fatal(err)
	}
	stored, shared, saved := ds.Stats()
	fmt.Printf("dedup store: %d blocks stored, %d shared, %d bytes saved\n", stored, shared, saved)
}

func accuracy(m *nn.Model, d *data.Classified) float64 {
	acc, err := nn.Accuracy(m, d.X.Clone(), d.Labels)
	if err != nil {
		log.Fatal(err)
	}
	return acc
}
