// Quickstart: open a database, create a table, load a model, and run an
// inference query with PREDICT nested in SQL.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"tensorbase/internal/engine"
	"tensorbase/internal/nn"
)

func main() {
	dir, err := os.MkdirTemp("", "tensorbase-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Open an embedded database.
	db, err := engine.Open(filepath.Join(dir, "quickstart.db"), engine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Plain SQL for the relational side.
	mustExec(db, "CREATE TABLE transactions (id INT, amount DOUBLE, features VECTOR)")
	mustExec(db, "INSERT INTO transactions VALUES "+
		"(1, 12.50, [0.1, 0.2, 0.3, 0.4]), "+
		"(2, 980.00, [2.5, 2.6, 2.7, 2.8]), "+
		"(3, 47.10, [0.2, 0.1, 0.4, 0.3])")

	// Build and load a small scoring model (4 features → 2 classes).
	rng := rand.New(rand.NewSource(1))
	model := nn.MustModel("scorer", []int{1, 4},
		nn.NewLinear(rng, 4, 8), nn.ReLU{},
		nn.NewLinear(rng, 8, 2), nn.Softmax{},
	)
	if err := db.LoadModel(model, 0); err != nil {
		log.Fatal(err)
	}

	// Nest inference in SQL: every qualifying row gets a prediction.
	res, err := db.Exec("SELECT id, amount, PREDICT(scorer, features) FROM transactions WHERE amount > 20")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("id | amount | P(class)")
	for _, row := range res.Rows {
		fmt.Printf("%2d | %6.2f | %v\n", row[0].Int, row[1].Float, row[2].Vec)
	}

	// The adaptive optimizer explains how it would execute each batch.
	plan, err := db.ExplainPredict("scorer", 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n" + plan)
}

func mustExec(db *engine.DB, sql string) {
	if _, err := db.Exec(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
