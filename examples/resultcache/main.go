// Result caching: the Sec. 5 / 7.2.2 technique, SQL-integrated. The engine
// attaches an HNSW-indexed result cache to each loaded model; `PREDICT`
// probes it per row, compacts the misses into one dense model call, and
// caches the fresh predictions. Repeat (or near-duplicate) queries then
// serve straight from the cache without running the model. The Monte-Carlo
// estimator and the SLA policy decide whether the accuracy trade-off of
// near-match reuse is acceptable.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"tensorbase/internal/cache"
	"tensorbase/internal/data"
	"tensorbase/internal/engine"
	"tensorbase/internal/nn"
)

func main() {
	dir, err := os.MkdirTemp("", "resultcache")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Open an engine with per-model result caching enabled. The distance
	// threshold is squared L2 over the feature vector: 0 would cache only
	// exact repeats; a small positive value also reuses near-duplicates.
	db, err := engine.Open(filepath.Join(dir, "serve.db"), engine.Options{
		InferBatch:          32,
		ResultCache:         true,
		ResultCacheDistance: 1e-6,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A fraud-scoring table and a trained FC model.
	const n = 512
	d := data.Fraud(7, n)
	rows, schema, err := d.FeatureRows()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.CreateTable("txns", schema); err != nil {
		log.Fatal(err)
	}
	if _, err := db.InsertRows("txns", rows); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	model := nn.FraudFC(rng, 1024)
	if _, err := nn.Train(model, d.X, d.Labels, nn.TrainConfig{
		Epochs: 3, BatchSize: 64, LR: 0.05, Seed: 9,
	}); err != nil {
		log.Fatal(err)
	}
	if err := db.LoadModel(model, 0.95); err != nil {
		log.Fatal(err)
	}

	query := fmt.Sprintf("SELECT id, PREDICT(%s, features) FROM txns", model.Name())

	// Cold: every row misses, the model runs over compacted miss batches,
	// and each prediction is inserted into the cache.
	start := time.Now()
	cold, err := db.Exec(query)
	if err != nil {
		log.Fatal(err)
	}
	coldLat := time.Since(start)

	// Warm: the same feature vectors hit the exact-match fast path; the
	// model never runs (all-hit batches skip it entirely).
	start = time.Now()
	warm, err := db.Exec(query)
	if err != nil {
		log.Fatal(err)
	}
	warmLat := time.Since(start)

	for i := range cold.Rows {
		cp, wp := cold.Rows[i][1].Vec, warm.Rows[i][1].Vec
		for j := range cp {
			if cp[j] != wp[j] {
				log.Fatalf("row %d: cached prediction differs from model output", i)
			}
		}
	}

	s := db.Stats()
	fmt.Printf("cold query:  %v (%d rows, %d model calls)\n",
		coldLat.Round(time.Microsecond), len(cold.Rows), s.PredictUDFCalls)
	fmt.Printf("warm query:  %v (%.1fx speedup, %d cache hits, %d all-hit batches)\n",
		warmLat.Round(time.Microsecond), float64(coldLat)/float64(warmLat),
		s.CacheHits, s.BatchesAllHit)
	fmt.Printf("pipeline:    %d fills / %d stalls\n", s.PipelineFills, s.PipelineStalls)

	// SLA check (Sec. 5): near-match reuse trades accuracy for latency;
	// the Monte-Carlo estimator gates the cache on an agreement floor.
	rc, ok := db.ResultCacheFor(model.Name())
	if !ok {
		log.Fatal("model cache missing")
	}
	cm := cache.NewCachedModel(model, rc)
	use, agreement, err := cache.Recommend(cm, d.X.SliceRows(0, 100), cache.SLA{MinAgreement: 0.95})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SLA check:   %.1f%% cached-vs-full agreement → cache recommended: %v\n",
		100*agreement, use)
	fmt.Println("(paper Sec. 7.2.2: 10.3x speedup with accuracy 98.75% → 93.65% for the CNN)")
}
