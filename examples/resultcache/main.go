// Result caching: the Sec. 7.2.2 technique. Feature vectors of answered
// inference requests are indexed in an in-database HNSW structure; queries
// whose features fall within a distance threshold of a cached entry reuse
// the stored prediction. The Monte-Carlo estimator and the SLA policy
// decide whether the accuracy trade-off is acceptable.
package main

import (
	"fmt"
	"log"
	"time"

	"math/rand"

	"tensorbase/internal/cache"
	"tensorbase/internal/data"
	"tensorbase/internal/nn"
)

func main() {
	// MNIST-like digits and the paper's small CNN head.
	const side, train, test = 14, 1200, 400
	d := data.MNISTLike(11, train+test, side)
	rng := rand.New(rand.NewSource(12))
	model := nn.CacheCNN(rng, side)
	trainX := d.X.SliceRows(0, train)
	testX := d.X.SliceRows(train, train+test)
	if _, err := nn.Train(model, trainX, d.Labels[:train], nn.TrainConfig{
		Epochs: 4, BatchSize: 64, LR: 0.08, Seed: 13,
	}); err != nil {
		log.Fatal(err)
	}

	pix := side * side
	flatTrain := trainX.Reshape(train, pix)
	flatTest := testX.Reshape(test, pix)
	testY := d.Labels[train:]

	// Full inference baseline.
	start := time.Now()
	correct := 0
	for i := 0; i < test; i++ {
		out := model.Forward(flatTest.SliceRows(i, i+1).Clone().Reshape(1, side, side, 1))
		if out.ArgMaxRow(0) == testY[i] {
			correct++
		}
	}
	fullLat := time.Since(start)
	fullAcc := float64(correct) / test

	// Build the HNSW result cache, warmed with the training predictions.
	rc, err := cache.NewHNSW(pix, float64(pix)*0.13)
	if err != nil {
		log.Fatal(err)
	}
	cm := cache.NewCachedModel(model, rc)
	for i := 0; i < train; i++ {
		if _, err := cm.PredictRow(flatTrain.Row(i)); err != nil {
			log.Fatal(err)
		}
	}

	// SLA check: is a 6-point accuracy drop acceptable?
	use, agreement, err := cache.Recommend(cm, flatTest.SliceRows(0, 100), cache.SLA{MinAgreement: 0.8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Monte-Carlo agreement estimate: %.1f%% → cache recommended: %v\n", 100*agreement, use)

	// Cached serving.
	start = time.Now()
	correct = 0
	for i := 0; i < test; i++ {
		cls, err := cm.PredictClass(flatTest.Row(i))
		if err != nil {
			log.Fatal(err)
		}
		if cls == testY[i] {
			correct++
		}
	}
	cachedLat := time.Since(start)
	cachedAcc := float64(correct) / test
	hits, misses := rc.Stats()

	fmt.Printf("full inference: %v, accuracy %.2f%%\n", fullLat.Round(time.Millisecond), 100*fullAcc)
	fmt.Printf("hnsw cache:     %v, accuracy %.2f%% (%.1fx speedup, %.0f%% hit rate)\n",
		cachedLat.Round(time.Millisecond), 100*cachedAcc,
		float64(fullLat)/float64(cachedLat), 100*float64(hits)/float64(hits+misses))
	fmt.Println("(paper Sec. 7.2.2: 10.3x speedup with accuracy 98.75% → 93.65% for the CNN)")
}
