// Fraud detection: the paper's motivating latency-critical workload.
// Transaction features live in the database; a trained FFNN scores them.
// The example contrasts the in-database serving path with the DL-centric
// architecture (connector transfer to an external runtime) on the same
// stored data.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"tensorbase/internal/connector"
	"tensorbase/internal/data"
	"tensorbase/internal/dlruntime"
	"tensorbase/internal/engine"
	"tensorbase/internal/nn"
	"tensorbase/internal/table"
)

func main() {
	dir, err := os.MkdirTemp("", "tensorbase-fraud-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := engine.Open(filepath.Join(dir, "fraud.db"), engine.Options{InferBatch: 512})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Generate and store the transaction table.
	const n = 10000
	d := data.Fraud(42, n)
	rows, schema, err := d.FeatureRows()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.CreateTable("transactions", schema); err != nil {
		log.Fatal(err)
	}
	if _, err := db.InsertRows("transactions", rows); err != nil {
		log.Fatal(err)
	}

	// Train the Fraud-FC-256 model of Table 1 on the stored data.
	rng := rand.New(rand.NewSource(7))
	model := nn.FraudFC(rng, 256)
	if _, err := nn.Train(model, d.X, d.Labels, nn.TrainConfig{Epochs: 3, BatchSize: 64, LR: 0.05, Seed: 1}); err != nil {
		log.Fatal(err)
	}
	acc, err := nn.Accuracy(model, d.X.Clone(), d.Labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %s, training accuracy %.1f%%\n", model.Name(), 100*acc)
	if err := db.LoadModel(model, acc); err != nil {
		log.Fatal(err)
	}

	// In-database scoring: one SQL statement.
	start := time.Now()
	res, err := db.Exec("SELECT id, PREDICT(Fraud-FC-256, features) FROM transactions")
	if err != nil {
		log.Fatal(err)
	}
	inDB := time.Since(start)
	flagged := 0
	for _, r := range res.Rows {
		pred := r[1].Vec
		if pred[1] > pred[0] {
			flagged++
		}
	}
	fmt.Printf("in-database:  scored %d txns in %v (%d flagged)\n", len(res.Rows), inDB.Round(time.Millisecond), flagged)

	// DL-centric baseline: export the same rows through the connector to
	// an external eager runtime.
	te, err := db.Catalog().Table("transactions")
	if err != nil {
		log.Fatal(err)
	}
	rt := dlruntime.New(dlruntime.Eager, 0)
	sess, err := rt.Load(model)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	start = time.Now()
	src := &featureSource{scan: te.Heap.Scan()}
	x, err := connector.Transfer(src, 28, 1024, nil)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sess.Infer(x); err != nil {
		log.Fatal(err)
	}
	dlCentric := time.Since(start)
	fmt.Printf("dl-centric:   scored %d txns in %v (transfer + external inference)\n", x.Dim(0), dlCentric.Round(time.Millisecond))
	fmt.Printf("in-database serving is %.2fx faster on this workload\n", float64(dlCentric)/float64(inDB))
}

// featureSource adapts the transactions heap scan to connector.RowSource:
// it yields the "features" column (index 1) of each tuple.
type featureSource struct{ scan *table.Scanner }

func (s *featureSource) NextRow() ([]float32, bool, error) {
	t, ok, err := s.scan.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	return t[1].Vec, true, nil
}
