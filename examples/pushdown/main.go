// Model decomposition and push-down (Sec. 2 / 7.2.1): an inference pipeline
// that joins two feature tables and runs an FFNN is rewritten so the first
// layer's two halves execute below the join — same results, much less work.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"tensorbase/internal/core"
	"tensorbase/internal/data"
	"tensorbase/internal/exec"
	"tensorbase/internal/nn"
)

func main() {
	const rowsPerSide, featuresPerSide = 1000, 200
	d1, d2 := data.BoschTables(5, rowsPerSide, featuresPerSide, 6)
	rng := rand.New(rand.NewSource(6))
	model := nn.BoschFC(rng, 2*featuresPerSide)

	q := &core.FeatureJoinQuery{
		LeftSim: "s1", RightSim: "s2",
		LeftVec: "v1", RightVec: "v2",
		Eps:   0.25,
		Model: model,
	}

	run := func(name string, build func() (exec.Operator, error)) (time.Duration, int) {
		q.Left = exec.NewMemScan(data.BoschSchema("s1", "v1"), d1)
		q.Right = exec.NewMemScan(data.BoschSchema("s2", "v2"), d2)
		op, err := build()
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		rows, err := exec.Collect(op)
		if err != nil {
			log.Fatal(err)
		}
		lat := time.Since(start)
		fmt.Printf("%-22s %8d result rows in %v\n", name, len(rows), lat.Round(time.Millisecond))
		return lat, len(rows)
	}

	fmt.Printf("similarity-join of two %d-row × %d-feature tables, then %s\n\n",
		rowsPerSide, featuresPerSide, model.Name())
	naive, n1 := run("join-then-infer:", q.BuildNaive)
	pushed, n2 := run("decompose+push-down:", q.BuildPushdown)
	if n1 != n2 {
		log.Fatalf("plans disagree: %d vs %d rows", n1, n2)
	}
	fmt.Printf("\nidentical predictions, %.1fx speedup (paper Sec. 7.2.1: 5.7x)\n",
		float64(naive)/float64(pushed))
}
