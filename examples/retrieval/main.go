// Retrieval: the paper (Sec. 6.3) positions the RDBMS as a high-performance
// retrieving engine for augmenting model inference. This example stores
// documents with embedding vectors, builds an in-database HNSW index, and
// serves nearest-neighbour queries — embeddings produced by the same
// in-database model that would consume the retrieved context.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"tensorbase/internal/data"
	"tensorbase/internal/engine"
	"tensorbase/internal/table"
)

func main() {
	dir, err := os.MkdirTemp("", "tensorbase-retrieval-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := engine.Open(filepath.Join(dir, "retrieval.db"), engine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Store 2000 "documents": id, topic label, embedding. Embeddings come
	// from 8 topic clusters, like encoder outputs would.
	const n, dim, topics = 2000, 32, 8
	d := data.Clusters(17, n, dim, topics, 0.35)
	schema := table.MustSchema(
		table.Column{Name: "id", Type: table.Int64},
		table.Column{Name: "topic", Type: table.Int64},
		table.Column{Name: "embedding", Type: table.FloatVec},
	)
	if _, err := db.CreateTable("docs", schema); err != nil {
		log.Fatal(err)
	}
	rows := make([]table.Tuple, n)
	for i := 0; i < n; i++ {
		rows[i] = table.Tuple{
			table.IntVal(int64(i)),
			table.IntVal(int64(d.Labels[i])),
			table.VecVal(d.X.Row(i)),
		}
	}
	if _, err := db.InsertRows("docs", rows); err != nil {
		log.Fatal(err)
	}

	indexed, err := db.CreateVectorIndex("docs", "embedding")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d document embeddings (HNSW)\n", indexed)

	// Query with a fresh embedding from a known topic; the retrieved
	// context should come from that topic.
	rng := rand.New(rand.NewSource(18))
	query := make([]float32, dim)
	copy(query, d.X.Row(rng.Intn(n)))
	wantTopic := -1
	for i := 0; i < n; i++ {
		same := true
		for j := 0; j < dim; j++ {
			if d.X.Row(i)[j] != query[j] {
				same = false
				break
			}
		}
		if same {
			wantTopic = d.Labels[i]
			break
		}
	}

	hits, dists, err := db.Nearest("docs", "embedding", query, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-5 retrieved for a topic-%d query:\n", wantTopic)
	correct := 0
	for i, h := range hits {
		fmt.Printf("  doc %4d  topic %d  dist² %.3f\n", h[0].Int, h[1].Int, dists[i])
		if int(h[1].Int) == wantTopic {
			correct++
		}
	}
	fmt.Printf("%d/5 retrieved documents share the query's topic\n", correct)
}
