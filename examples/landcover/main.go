// LandCover segmentation: the paper's out-of-memory case study (Table 3).
// A wide 1×1 convolution produces a feature map far larger than the memory
// budget. The external runtime and the whole-tensor UDF path OOM; the
// relation-centric plan rewrites the convolution into a blocked matrix
// multiplication (spatial rewriting + join/aggregation) whose blocks stream
// through the buffer pool, and completes.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"tensorbase/internal/core"
	"tensorbase/internal/data"
	"tensorbase/internal/dlruntime"
	"tensorbase/internal/memlimit"
	"tensorbase/internal/nn"
	"tensorbase/internal/storage"
)

func main() {
	dir, err := os.MkdirTemp("", "tensorbase-landcover-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// LandCover at 1/10 of the paper's 2500×2500×3 / 2048-kernel scale,
	// with the machine-memory budget scaled to match: the output feature
	// map alone (~51 MiB here, ~51 GiB at paper scale) dominates memory.
	const scale = 10
	rng := rand.New(rand.NewSource(3))
	model := nn.LandCover(rng, scale)
	hw, oc := nn.LandCoverDims(scale)
	budgetBytes := int64(52 << 20)
	fmt.Printf("LandCover ÷%d: input %dx%dx3, %d kernels, memory budget %d MiB\n",
		scale, hw, hw, oc, budgetBytes>>20)

	x := data.Images(1, 1, hw, 3)

	// External eager runtime (whole-tensor): OOM.
	rt := dlruntime.New(dlruntime.Eager, budgetBytes)
	sess, err := rt.Load(model)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sess.Infer(x.Clone()); errors.Is(err, memlimit.ErrOOM) {
		fmt.Println("external eager runtime:  OOM (whole feature map does not fit)")
	} else if err != nil {
		log.Fatal(err)
	} else {
		fmt.Println("external eager runtime:  completed (unexpected at this budget)")
	}
	sess.Close()

	// Relation-centric in-database plan: completes within budget.
	disk, err := storage.OpenDisk(filepath.Join(dir, "landcover.db"))
	if err != nil {
		log.Fatal(err)
	}
	defer disk.Close()
	pool := storage.NewBufferPool(disk, 640) // a scaled 20 MiB buffer pool
	budget := memlimit.NewBudget(budgetBytes)
	ex := core.NewExecutor(pool, budget)
	plan, err := core.NewOptimizer(8<<20).Plan(model, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Explain())

	start := time.Now()
	res, err := ex.Run(plan, x.Clone())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relation-centric plan:   completed in %v, %d feature-map rows (blocked, spilled via buffer pool)\n",
		time.Since(start).Round(time.Millisecond), res.Rows())
	st := pool.Stats()
	fmt.Printf("buffer pool: %d hits, %d misses, %d evictions (%d dirty write-backs)\n",
		st.Hits, st.Misses, st.Evictions, st.DirtyOut)
	fmt.Printf("peak whole-tensor reservation: %d KiB of %d MiB budget\n",
		budget.Peak()>>10, budgetBytes>>20)
}
